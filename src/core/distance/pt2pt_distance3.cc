// Algorithm 4 (paper's pt2ptDistance3): Algorithm 3 plus cross-iteration
// reuse of door-to-door distances.
//
//  * Backward reuse (paper lines 31-37): when destination door di settles,
//    every not-yet-processed source door dj on its shortest-path tree branch
//    yields the EXACT distance dists[dj][di] = dist[di] - dist[dj]
//    (sub-paths of shortest paths are shortest), so dj's own iteration can
//    skip di entirely.
//  * Forward reuse (paper lines 40-45): when an already-processed source
//    door di settles, cached dists[di][dj] values concatenate into valid
//    ds->di->dj path lengths. Under ReusePolicy::kPaperFaithful the search
//    then breaks as in the pseudocode (which silently assumes the shortest
//    ds->dj path runs through di and can overestimate on star topologies);
//    under ReusePolicy::kSafe (default) the concatenations only tighten the
//    bound dist_m and the expansion continues, preserving exactness.

#include <algorithm>

#include "core/distance/d2d_distance.h"
#include "core/distance/dijkstra_stats.h"
#include "core/distance/pt2pt_distance.h"
#include "core/distance/query_scratch.h"
#include "core/query/query_cache.h"
#include "util/metrics.h"

namespace indoor {

using internal::DirectCandidate;
using internal::Endpoints;
using internal::PrunedSourceDoors;
using internal::ResolveEndpoints;

double Pt2PtDistanceReuse(const DistanceContext& ctx, const Point& ps,
                          const Point& pt, ReusePolicy policy,
                          QueryScratch* scratch) {
  INDOOR_LATENCY_SPAN("pt2pt_reuse", "query.pt2pt_reuse.latency_ns");
  const FloorPlan& plan = ctx.graph->plan();
  const Endpoints endpoints = ResolveEndpoints(ctx, ps, pt);
  if (!endpoints.ok()) return kInfDistance;
  scratch = &ResolveQueryScratch(scratch);
  const ScratchDecayGuard decay_guard(scratch);

  auto& doors_s = scratch->source_doors;
  PrunedSourceDoors(plan, endpoints.vs, endpoints.vt, &doors_s);
  const std::vector<DoorId>& doors_t = plan.EnterDoors(endpoints.vt);

  // Leg caches and local (row/col) index maps for the dists[.][.] matrix,
  // each endpoint resolved with one batched geodesic solve.
  const size_t rows = doors_s.size();
  const size_t cols = doors_t.size();
  auto& src_leg = scratch->src_leg;
  auto& dst_leg = scratch->dst_leg;
  src_leg.resize(rows);
  dst_leg.resize(cols);
  {
    INDOOR_TRACE_SPAN("entry_exit_legs");
    // doors_s is an ascending subset of LeaveDoors(vs), served exactly
    // from the cached canonical field (query_cache.h).
    CachedFieldLegs(ctx.cache, *ctx.locator, FieldKind::kLeaveFrom,
                    endpoints.vs, ps, doors_s, &scratch->geo,
                    src_leg.data());
    CachedFieldLegs(ctx.cache, *ctx.locator, FieldKind::kEnterTo,
                    endpoints.vt, pt, doors_t, &scratch->geo,
                    dst_leg.data());
  }
  auto row_of = [&](DoorId d) -> int {
    const auto it = std::lower_bound(doors_s.begin(), doors_s.end(), d);
    return (it != doors_s.end() && *it == d)
               ? static_cast<int>(it - doors_s.begin())
               : -1;
  };
  auto col_of = [&](DoorId d) -> int {
    const auto it = std::lower_bound(doors_t.begin(), doors_t.end(), d);
    return (it != doors_t.end() && *it == d)
               ? static_cast<int>(it - doors_t.begin())
               : -1;
  };
  // dists[row][col], initialized to infinity (paper lines 9-10).
  auto& dists = scratch->d2d_cache;
  dists.assign(rows * cols, kInfDistance);

  double dist_m = DirectCandidate(ctx, endpoints, ps, pt, &scratch->geo);

  INDOOR_TRACE_SPAN("source_door_expansions");
  const size_t n = plan.door_count();
  auto& dist = scratch->door.dist;
  auto& visited = scratch->door.visited;
  auto& prev = scratch->prev;

  for (size_t row = 0; row < rows; ++row) {
    const DoorId ds = doors_s[row];
    if (src_leg[row] == kInfDistance) continue;

    // Lines 13-16: candidate destination doors with unknown distances.
    auto& doors = scratch->cand_doors;
    doors.clear();
    for (size_t j = 0; j < cols; ++j) {
      if (dists[row * cols + j] == kInfDistance &&
          dst_leg[j] != kInfDistance &&
          src_leg[row] + dst_leg[j] < dist_m) {
        doors.push_back(doors_t[j]);
      }
    }
    if (doors.empty()) continue;

    // Both frontier kinds pop the identical (distance, id) sequence
    // (bucket_queue.h), so the settle order — and with it every reuse
    // decision, both policies included — is frontier-independent.
    const auto expand = [&](auto& frontier, QueueKind kind) {
      dist.assign(n, kInfDistance);
      visited.assign(n, 0);
      prev.assign(n, PrevEntry{});
      ResetFrontier(&frontier, *ctx.graph);
      dist[ds] = 0.0;
      frontier.push({0.0, ds});

      INDOOR_METRICS_ONLY(internal::DijkstraRunStats stats;
                          stats.queue = kind;)
      (void)kind;
      while (!frontier.empty()) {
        const auto [d, di] = frontier.top();
        frontier.pop();
        if (visited[di]) continue;
        visited[di] = 1;
        INDOOR_METRICS_ONLY(++stats.settles;)

        const auto door_it = std::find(doors.begin(), doors.end(), di);
        if (door_it != doors.end()) {
          // Lines 27-38: a destination door settles.
          doors.erase(door_it);
          const int col = col_of(di);
          dists[row * cols + col] = d;  // settled value is exact (our addition)
          if (src_leg[row] + d + dst_leg[col] < dist_m) {
            dist_m = src_leg[row] + d + dst_leg[col];
          }
          // Backward reuse along the shortest-path tree branch.
          DoorId dj = prev[di].door;
          while (dj != kInvalidId && dj != ds) {
            const int back_row = row_of(dj);
            if (back_row >= 0 && dj > ds) {
              const double exact = d - dist[dj];
              dists[static_cast<size_t>(back_row) * cols + col] = exact;
              if (src_leg[back_row] != kInfDistance &&
                  src_leg[back_row] + exact + dst_leg[col] < dist_m) {
                dist_m = src_leg[back_row] + exact + dst_leg[col];
              }
            }
            dj = prev[dj].door;
          }
          if (doors.empty()) break;
        } else {
          const int fwd_row = row_of(di);
          if (fwd_row >= 0 && di < ds) {
            // Lines 40-45: forward reuse through an earlier source door.
            bool all_known = true;
            for (DoorId dj : doors) {
              const int col = col_of(dj);
              const double via =
                  d + dists[static_cast<size_t>(fwd_row) * cols +
                            static_cast<size_t>(col)];
              if (via == kInfDistance) {
                all_known = false;
                continue;
              }
              if (policy == ReusePolicy::kPaperFaithful) {
                dists[row * cols + col] = via;
              }
              if (src_leg[row] + via + dst_leg[col] < dist_m) {
                dist_m = src_leg[row] + via + dst_leg[col];
              }
            }
            if (policy == ReusePolicy::kPaperFaithful) {
              (void)all_known;
              break;  // verbatim pseudocode: stop this source's expansion
            }
          }
        }

        for (const DoorGraphEdge& e : ctx.graph->DoorEdges(di)) {
          if (visited[e.to]) continue;
          if (d + e.weight < dist[e.to]) {
            dist[e.to] = d + e.weight;
            frontier.push({dist[e.to], e.to});
            INDOOR_METRICS_ONLY(++stats.relaxations;)
            prev[e.to] = {e.via, di};
          }
        }
      }
    };
    if (ctx.queue == QueueKind::kBucket) {
      expand(scratch->door.bucket, QueueKind::kBucket);
    } else {
      expand(scratch->door.heap, QueueKind::kHeap);
    }
  }
  return dist_m;
}

}  // namespace indoor
