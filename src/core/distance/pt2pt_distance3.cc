// Algorithm 4 (paper's pt2ptDistance3): Algorithm 3 plus cross-iteration
// reuse of door-to-door distances.
//
//  * Backward reuse (paper lines 31-37): when destination door di settles,
//    every not-yet-processed source door dj on its shortest-path tree branch
//    yields the EXACT distance dists[dj][di] = dist[di] - dist[dj]
//    (sub-paths of shortest paths are shortest), so dj's own iteration can
//    skip di entirely.
//  * Forward reuse (paper lines 40-45): when an already-processed source
//    door di settles, cached dists[di][dj] values concatenate into valid
//    ds->di->dj path lengths. Under ReusePolicy::kPaperFaithful the search
//    then breaks as in the pseudocode (which silently assumes the shortest
//    ds->dj path runs through di and can overestimate on star topologies);
//    under ReusePolicy::kSafe (default) the concatenations only tighten the
//    bound dist_m and the expansion continues, preserving exactness.

#include <algorithm>
#include <queue>

#include "core/distance/d2d_distance.h"
#include "core/distance/pt2pt_distance.h"

namespace indoor {

using internal::DirectCandidate;
using internal::Endpoints;
using internal::PrunedSourceDoors;
using internal::ResolveEndpoints;

double Pt2PtDistanceReuse(const DistanceContext& ctx, const Point& ps,
                          const Point& pt, ReusePolicy policy) {
  const FloorPlan& plan = ctx.graph->plan();
  const Endpoints endpoints = ResolveEndpoints(ctx, ps, pt);
  if (!endpoints.ok()) return kInfDistance;

  const std::vector<DoorId> doors_s =
      PrunedSourceDoors(plan, endpoints.vs, endpoints.vt);
  const std::vector<DoorId>& doors_t = plan.EnterDoors(endpoints.vt);

  // Leg caches and local (row/col) index maps for the dists[.][.] matrix.
  const size_t rows = doors_s.size();
  const size_t cols = doors_t.size();
  std::vector<double> src_leg(rows), dst_leg(cols);
  for (size_t i = 0; i < rows; ++i) {
    src_leg[i] = ctx.locator->DistV(endpoints.vs, ps, doors_s[i]);
  }
  for (size_t j = 0; j < cols; ++j) {
    dst_leg[j] = ctx.locator->DistV(endpoints.vt, pt, doors_t[j]);
  }
  auto row_of = [&](DoorId d) -> int {
    const auto it = std::lower_bound(doors_s.begin(), doors_s.end(), d);
    return (it != doors_s.end() && *it == d)
               ? static_cast<int>(it - doors_s.begin())
               : -1;
  };
  auto col_of = [&](DoorId d) -> int {
    const auto it = std::lower_bound(doors_t.begin(), doors_t.end(), d);
    return (it != doors_t.end() && *it == d)
               ? static_cast<int>(it - doors_t.begin())
               : -1;
  };
  // dists[row][col], initialized to infinity (paper lines 9-10).
  std::vector<double> dists(rows * cols, kInfDistance);

  double dist_m = DirectCandidate(ctx, endpoints, ps, pt);

  const size_t n = plan.door_count();
  std::vector<double> dist(n);
  std::vector<char> visited(n);
  std::vector<PrevEntry> prev(n);

  for (size_t row = 0; row < rows; ++row) {
    const DoorId ds = doors_s[row];
    if (src_leg[row] == kInfDistance) continue;

    // Lines 13-16: candidate destination doors with unknown distances.
    std::vector<DoorId> doors;
    for (size_t j = 0; j < cols; ++j) {
      if (dists[row * cols + j] == kInfDistance &&
          dst_leg[j] != kInfDistance &&
          src_leg[row] + dst_leg[j] < dist_m) {
        doors.push_back(doors_t[j]);
      }
    }
    if (doors.empty()) continue;

    dist.assign(n, kInfDistance);
    visited.assign(n, 0);
    prev.assign(n, PrevEntry{});
    using Entry = std::pair<double, DoorId>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    dist[ds] = 0.0;
    heap.push({0.0, ds});

    while (!heap.empty()) {
      const auto [d, di] = heap.top();
      heap.pop();
      if (visited[di]) continue;
      visited[di] = 1;

      const auto door_it = std::find(doors.begin(), doors.end(), di);
      if (door_it != doors.end()) {
        // Lines 27-38: a destination door settles.
        doors.erase(door_it);
        const int col = col_of(di);
        dists[row * cols + col] = d;  // settled value is exact (our addition)
        if (src_leg[row] + d + dst_leg[col] < dist_m) {
          dist_m = src_leg[row] + d + dst_leg[col];
        }
        // Backward reuse along the shortest-path tree branch.
        DoorId dj = prev[di].door;
        while (dj != kInvalidId && dj != ds) {
          const int back_row = row_of(dj);
          if (back_row >= 0 && dj > ds) {
            const double exact = d - dist[dj];
            dists[static_cast<size_t>(back_row) * cols + col] = exact;
            if (src_leg[back_row] != kInfDistance &&
                src_leg[back_row] + exact + dst_leg[col] < dist_m) {
              dist_m = src_leg[back_row] + exact + dst_leg[col];
            }
          }
          dj = prev[dj].door;
        }
        if (doors.empty()) break;
      } else {
        const int fwd_row = row_of(di);
        if (fwd_row >= 0 && di < ds) {
          // Lines 40-45: forward reuse through an earlier source door.
          bool all_known = true;
          for (DoorId dj : doors) {
            const int col = col_of(dj);
            const double via = d + dists[static_cast<size_t>(fwd_row) * cols +
                                         static_cast<size_t>(col)];
            if (via == kInfDistance) {
              all_known = false;
              continue;
            }
            if (policy == ReusePolicy::kPaperFaithful) {
              dists[row * cols + col] = via;
            }
            if (src_leg[row] + via + dst_leg[col] < dist_m) {
              dist_m = src_leg[row] + via + dst_leg[col];
            }
          }
          if (policy == ReusePolicy::kPaperFaithful) {
            (void)all_known;
            break;  // verbatim pseudocode: stop this source's expansion
          }
        }
      }

      for (PartitionId v : plan.EnterableParts(di)) {
        for (DoorId dj : plan.LeaveDoors(v)) {
          if (visited[dj]) continue;
          const double w = ctx.graph->Fd2d(v, di, dj);
          if (w == kInfDistance) continue;
          if (d + w < dist[dj]) {
            dist[dj] = d + w;
            heap.push({dist[dj], dj});
            prev[dj] = {v, di};
          }
        }
      }
    }
  }
  return dist_m;
}

}  // namespace indoor
