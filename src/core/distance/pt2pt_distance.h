// Position-to-position minimum indoor walking distance: the paper's three
// algorithm variants plus one extension.
//
//   Pt2PtDistanceBasic    — Algorithm 2: for every (source door, destination
//                           door) pair, blindly call d2dDistance.
//   Pt2PtDistanceRefined  — Algorithm 3: dead-end source-door pruning, one
//                           shared Dijkstra per source door over a target
//                           door set filtered by the current best bound.
//   Pt2PtDistanceReuse    — Algorithm 4: Algorithm 3 plus cross-iteration
//                           reuse of door-to-door distances via the
//                           dists[.][.] cache and prev[] backtracking.
//   Pt2PtDistanceVirtual  — extension (not in the paper): a single Dijkstra
//                           seeded with dist[ds] = distV(ps, ds) for every
//                           source door; exact and asymptotically the
//                           cheapest. Used as a further comparison point.
//
// All variants additionally consider the direct intra-partition distance
// when both positions share a host partition (the paper's pseudocode
// enumerates only door pairs; without this the result would be wrong for
// same-room queries — see DESIGN.md §2.4).

#ifndef INDOOR_CORE_DISTANCE_PT2PT_DISTANCE_H_
#define INDOOR_CORE_DISTANCE_PT2PT_DISTANCE_H_

#include "core/distance/bucket_queue.h"
#include "core/model/distance_graph.h"
#include "core/model/locator.h"

namespace indoor {

struct QueryScratch;
class QueryCache;
class LandmarkIndex;

/// Shared inputs of the pt2pt algorithms. Both referents must outlive the
/// context.
struct DistanceContext {
  const DistanceGraph* graph;
  const PartitionLocator* locator;

  /// Optional cross-query cache (core/query/query_cache.h). When set,
  /// ResolveEndpoints consults the host-partition cache and the entry/exit
  /// leg solves read through the source-field cache; results stay
  /// bit-identical to the uncached path. IndexFramework::distance_context
  /// attaches its cache automatically; reference implementations and
  /// hand-built contexts leave it null.
  const QueryCache* cache = nullptr;

  /// Optional ALT landmark rows (core/index/landmark_index.h). When set,
  /// Basic skips door pairs whose triangle-inequality lower bound cannot
  /// beat the running minimum, and Virtual prunes frontier pushes the same
  /// way; both uses are provably loss-free, so results stay bit-identical
  /// with landmarks attached or not. Refined/Reuse ignore the field (their
  /// shared-Dijkstra bounds interact with the dists[.][.] reuse cache; see
  /// pt2pt_distance3.cc).
  const LandmarkIndex* landmarks = nullptr;

  /// Frontier structure of the door-graph Dijkstra solves. The bucket
  /// queue (bucket_queue.h) extracts the same (distance, id) sequence as
  /// the binary heap — results are bitwise identical — but trades the
  /// O(log n) sift for O(1) bucket pushes on bounded edge weights.
  QueueKind queue = QueueKind::kBucket;

  /// Known host partitions of the query endpoints. When a caller already
  /// knows where a position lives (e.g. a stored object's partition),
  /// setting the hint skips the per-evaluation R-tree lookup in
  /// ResolveEndpoints; kInvalidId means "free point, locate it".
  PartitionId source_hint = kInvalidId;
  PartitionId target_hint = kInvalidId;

  DistanceContext(const DistanceGraph& g, const PartitionLocator& l)
      : graph(&g), locator(&l) {}

  /// Copy of this context with endpoint hints attached.
  DistanceContext WithHints(PartitionId vs, PartitionId vt) const {
    DistanceContext ctx = *this;
    ctx.source_hint = vs;
    ctx.target_hint = vt;
    return ctx;
  }
};

/// How Algorithm 4 exploits the dists[.][.] cache.
enum class ReusePolicy {
  /// Exact: cached distances only tighten the pruning bound and seed
  /// candidates; the expansion never terminates early on a cache hit whose
  /// optimality is not guaranteed (DESIGN.md §2.3).
  kSafe,
  /// Verbatim paper pseudocode (lines 40–45 break on a forward cache hit).
  /// Can overestimate on topologies where the shortest path to a
  /// destination door does not pass through an earlier source door.
  kPaperFaithful,
};

// All four variants accept an optional QueryScratch (query_scratch.h); a
// null scratch falls back to the calling thread's arena. Either way the
// steady-state evaluation performs no heap allocations, and results are
// bit-identical to the historical per-door implementations (the batched
// leg solver and the CSR expansions perform the same floating-point
// additions in the same order).

/// Algorithm 2. Returns kInfDistance when either position is not indoors or
/// no path exists.
double Pt2PtDistanceBasic(const DistanceContext& ctx, const Point& ps,
                          const Point& pt, QueryScratch* scratch = nullptr);

/// Algorithm 3.
double Pt2PtDistanceRefined(const DistanceContext& ctx, const Point& ps,
                            const Point& pt, QueryScratch* scratch = nullptr);

/// Algorithm 4.
double Pt2PtDistanceReuse(const DistanceContext& ctx, const Point& ps,
                          const Point& pt,
                          ReusePolicy policy = ReusePolicy::kSafe,
                          QueryScratch* scratch = nullptr);

/// Extension: single multi-source Dijkstra.
double Pt2PtDistanceVirtual(const DistanceContext& ctx, const Point& ps,
                            const Point& pt, QueryScratch* scratch = nullptr);

namespace internal {

/// Resolved query endpoints; hosts are kInvalidId when not indoors.
struct Endpoints {
  PartitionId vs = kInvalidId;
  PartitionId vt = kInvalidId;
  bool ok() const { return vs != kInvalidId && vt != kInvalidId; }
};

/// Resolves the endpoint host partitions, honoring the context's
/// source/target hints: the R-tree point query runs only for endpoints
/// without a hint (free points).
Endpoints ResolveEndpoints(const DistanceContext& ctx, const Point& ps,
                           const Point& pt);

/// The direct intra-partition candidate when vs == vt, else kInfDistance.
double DirectCandidate(const DistanceContext& ctx,
                       const Endpoints& endpoints, const Point& ps,
                       const Point& pt, GeodesicScratch* scratch = nullptr);

/// Algorithm 3/4 lines 3–8: source doors P2D_leave(vs) minus doors leading
/// only into a dead-end partition np (P2D_leave(np) == {ds}, np != vt).
/// Appends into `out` (cleared first) so a scratch-owned buffer is reused
/// across queries without reallocating.
void PrunedSourceDoors(const FloorPlan& plan, PartitionId vs, PartitionId vt,
                       std::vector<DoorId>* out);

/// Convenience wrapper returning a fresh vector.
std::vector<DoorId> PrunedSourceDoors(const FloorPlan& plan, PartitionId vs,
                                      PartitionId vt);

}  // namespace internal
}  // namespace indoor

#endif  // INDOOR_CORE_DISTANCE_PT2PT_DISTANCE_H_
