// Position-to-position minimum indoor walking distance: the paper's three
// algorithm variants plus one extension.
//
//   Pt2PtDistanceBasic    — Algorithm 2: for every (source door, destination
//                           door) pair, blindly call d2dDistance.
//   Pt2PtDistanceRefined  — Algorithm 3: dead-end source-door pruning, one
//                           shared Dijkstra per source door over a target
//                           door set filtered by the current best bound.
//   Pt2PtDistanceReuse    — Algorithm 4: Algorithm 3 plus cross-iteration
//                           reuse of door-to-door distances via the
//                           dists[.][.] cache and prev[] backtracking.
//   Pt2PtDistanceVirtual  — extension (not in the paper): a single Dijkstra
//                           seeded with dist[ds] = distV(ps, ds) for every
//                           source door; exact and asymptotically the
//                           cheapest. Used as a further comparison point.
//
// All variants additionally consider the direct intra-partition distance
// when both positions share a host partition (the paper's pseudocode
// enumerates only door pairs; without this the result would be wrong for
// same-room queries — see DESIGN.md §2.4).

#ifndef INDOOR_CORE_DISTANCE_PT2PT_DISTANCE_H_
#define INDOOR_CORE_DISTANCE_PT2PT_DISTANCE_H_

#include "core/model/distance_graph.h"
#include "core/model/locator.h"

namespace indoor {

/// Shared inputs of the pt2pt algorithms. Both referents must outlive the
/// context.
struct DistanceContext {
  const DistanceGraph* graph;
  const PartitionLocator* locator;

  DistanceContext(const DistanceGraph& g, const PartitionLocator& l)
      : graph(&g), locator(&l) {}
};

/// How Algorithm 4 exploits the dists[.][.] cache.
enum class ReusePolicy {
  /// Exact: cached distances only tighten the pruning bound and seed
  /// candidates; the expansion never terminates early on a cache hit whose
  /// optimality is not guaranteed (DESIGN.md §2.3).
  kSafe,
  /// Verbatim paper pseudocode (lines 40–45 break on a forward cache hit).
  /// Can overestimate on topologies where the shortest path to a
  /// destination door does not pass through an earlier source door.
  kPaperFaithful,
};

/// Algorithm 2. Returns kInfDistance when either position is not indoors or
/// no path exists.
double Pt2PtDistanceBasic(const DistanceContext& ctx, const Point& ps,
                          const Point& pt);

/// Algorithm 3.
double Pt2PtDistanceRefined(const DistanceContext& ctx, const Point& ps,
                            const Point& pt);

/// Algorithm 4.
double Pt2PtDistanceReuse(const DistanceContext& ctx, const Point& ps,
                          const Point& pt,
                          ReusePolicy policy = ReusePolicy::kSafe);

/// Extension: single multi-source Dijkstra.
double Pt2PtDistanceVirtual(const DistanceContext& ctx, const Point& ps,
                            const Point& pt);

namespace internal {

/// Resolved query endpoints; hosts are kInvalidId when not indoors.
struct Endpoints {
  PartitionId vs = kInvalidId;
  PartitionId vt = kInvalidId;
  bool ok() const { return vs != kInvalidId && vt != kInvalidId; }
};

Endpoints ResolveEndpoints(const DistanceContext& ctx, const Point& ps,
                           const Point& pt);

/// The direct intra-partition candidate when vs == vt, else kInfDistance.
double DirectCandidate(const DistanceContext& ctx,
                       const Endpoints& endpoints, const Point& ps,
                       const Point& pt);

/// Algorithm 3/4 lines 3–8: source doors P2D_leave(vs) minus doors leading
/// only into a dead-end partition np (P2D_leave(np) == {ds}, np != vt).
std::vector<DoorId> PrunedSourceDoors(const FloorPlan& plan, PartitionId vs,
                                      PartitionId vt);

}  // namespace internal
}  // namespace indoor

#endif  // INDOOR_CORE_DISTANCE_PT2PT_DISTANCE_H_
