#include "core/distance/d2d_distance.h"

#include "core/distance/dijkstra_stats.h"
#include "util/metrics.h"

namespace indoor {
namespace {

/// Core of Algorithm 1. Runs until `target` is settled (or the heap drains
/// when target == kInvalidId), returning dist[target] (or 0; the caller
/// reads the arrays for the single-source variant). Expansion iterates the
/// pre-flattened CSR door rows (DistanceGraph::DoorEdges), which relax the
/// same (target, weight) sequence as the paper's nested
/// EnterableParts/LeaveDoors loops — distances and prev[] trees are
/// bit-identical to the nested form.
double RunD2d(const DistanceGraph& graph, DoorId ds, DoorId target,
              std::vector<double>* dist_out, std::vector<char>* visited_buf,
              MinHeap<std::pair<double, DoorId>>* heap,
              std::vector<PrevEntry>* prev_out) {
  const size_t n = graph.plan().door_count();
  INDOOR_CHECK(ds < n);

  std::vector<double>& dist = *dist_out;
  dist.assign(n, kInfDistance);
  if (prev_out != nullptr) prev_out->assign(n, PrevEntry{});
  std::vector<char>& visited = *visited_buf;
  visited.assign(n, 0);

  heap->clear();
  dist[ds] = 0.0;
  heap->push({0.0, ds});

  INDOOR_METRICS_ONLY(internal::DijkstraRunStats stats;)
  while (!heap->empty()) {
    const auto [d, di] = heap->top();
    heap->pop();
    if (visited[di]) continue;
    visited[di] = 1;
    INDOOR_METRICS_ONLY(++stats.settles;)
    if (di == target) return d;
    for (const DoorGraphEdge& e : graph.DoorEdges(di)) {
      if (visited[e.to]) continue;
      if (dist[di] + e.weight < dist[e.to]) {
        dist[e.to] = dist[di] + e.weight;
        heap->push({dist[e.to], e.to});
        INDOOR_METRICS_ONLY(++stats.relaxations;)
        if (prev_out != nullptr) (*prev_out)[e.to] = {e.via, di};
      }
    }
  }
  return target == kInvalidId ? 0.0 : dist[target];
}

}  // namespace

DoorDijkstraScratch& TlsDoorDijkstraScratch() {
  static thread_local DoorDijkstraScratch scratch;
  return scratch;
}

double D2dDistance(const DistanceGraph& graph, DoorId ds, DoorId dt,
                   DoorDijkstraScratch* scratch) {
  INDOOR_CHECK(dt < graph.plan().door_count());
  if (scratch == nullptr) scratch = &TlsDoorDijkstraScratch();
  return RunD2d(graph, ds, dt, &scratch->dist, &scratch->visited,
                &scratch->heap, nullptr);
}

double D2dDistance(const DistanceGraph& graph, DoorId ds, DoorId dt,
                   std::vector<PrevEntry>* prev) {
  INDOOR_CHECK(dt < graph.plan().door_count());
  DoorDijkstraScratch& scratch = TlsDoorDijkstraScratch();
  return RunD2d(graph, ds, dt, &scratch.dist, &scratch.visited, &scratch.heap,
                prev);
}

void D2dDistancesFrom(const DistanceGraph& graph, DoorId ds,
                      std::vector<double>* dist,
                      std::vector<PrevEntry>* prev) {
  // Build-time callers (Md2d rows) run one call per worker-owned buffers;
  // the visited/heap state is local so concurrent builds stay independent.
  std::vector<char> visited;
  MinHeap<std::pair<double, DoorId>> heap;
  RunD2d(graph, ds, kInvalidId, dist, &visited, &heap, prev);
}

}  // namespace indoor
