#include "core/distance/d2d_distance.h"

#include "core/distance/dijkstra_stats.h"
#include "util/metrics.h"
#include "util/simd.h"

namespace indoor {
namespace {

/// Core of Algorithm 1, heap frontier. Runs until `target` is settled (or
/// the heap drains when target == kInvalidId), returning dist[target] (or
/// 0; the caller reads the arrays for the single-source variant).
/// Expansion iterates the pre-flattened CSR door rows
/// (DistanceGraph::DoorEdges), which relax the same (target, weight)
/// sequence as the paper's nested EnterableParts/LeaveDoors loops —
/// distances and prev[] trees are bit-identical to the nested form.
double RunD2dHeap(const DistanceGraph& graph, DoorId ds, DoorId target,
                  std::vector<double>* dist_out,
                  std::vector<char>* visited_buf,
                  MinHeap<std::pair<double, DoorId>>* heap,
                  std::vector<PrevEntry>* prev_out) {
  const size_t n = graph.plan().door_count();
  INDOOR_CHECK(ds < n);

  std::vector<double>& dist = *dist_out;
  dist.assign(n, kInfDistance);
  if (prev_out != nullptr) prev_out->assign(n, PrevEntry{});
  std::vector<char>& visited = *visited_buf;
  visited.assign(n, 0);

  heap->clear();
  dist[ds] = 0.0;
  heap->push({0.0, ds});

  INDOOR_METRICS_ONLY(internal::DijkstraRunStats stats;)
  while (!heap->empty()) {
    const auto [d, di] = heap->top();
    heap->pop();
    if (visited[di]) continue;
    visited[di] = 1;
    INDOOR_METRICS_ONLY(++stats.settles;)
    if (di == target) return d;
    for (const DoorGraphEdge& e : graph.DoorEdges(di)) {
      if (visited[e.to]) continue;
      if (dist[di] + e.weight < dist[e.to]) {
        dist[e.to] = dist[di] + e.weight;
        heap->push({dist[e.to], e.to});
        INDOOR_METRICS_ONLY(++stats.relaxations;)
        if (prev_out != nullptr) (*prev_out)[e.to] = {e.via, di};
      }
    }
  }
  return target == kInvalidId ? 0.0 : dist[target];
}

/// Core of Algorithm 1, bucket frontier with SIMD batch relaxation over
/// the SoA edge spans. Bitwise identical to RunD2dHeap:
///  * BucketQueue extracts the exact lexicographic minimum (distance, id)
///    entry — the same pop order as the heap (bucket_queue.h invariant);
///  * simd::AddBase performs the identical per-lane `d + w` additions;
///  * simd::FilterImprovements selects the lanes with cand < dist[to]
///    against the pre-span dist values, and the scalar apply loop
///    re-checks in ascending lane order, so duplicate targets within one
///    span update exactly as the sequential scalar loop does. The heap
///    path's `visited[e.to]` skip is subsumed: a settled door has final
///    dist <= d <= cand, so its lane never passes the filter.
double RunD2dBucket(const DistanceGraph& graph, DoorId ds, DoorId target,
                    std::vector<double>* dist_out,
                    std::vector<char>* visited_buf, BucketQueue* queue,
                    std::vector<double>* cand_buf,
                    std::vector<uint32_t>* idx_buf,
                    std::vector<PrevEntry>* prev_out) {
  const size_t n = graph.plan().door_count();
  INDOOR_CHECK(ds < n);

  std::vector<double>& dist = *dist_out;
  dist.assign(n, kInfDistance);
  if (prev_out != nullptr) prev_out->assign(n, PrevEntry{});
  std::vector<char>& visited = *visited_buf;
  visited.assign(n, 0);
  cand_buf->resize(graph.max_door_out_degree());
  idx_buf->resize(graph.max_door_out_degree());
  double* const cand = cand_buf->data();
  uint32_t* const idx = idx_buf->data();

  queue->Prepare(graph.max_door_edge_weight());
  dist[ds] = 0.0;
  queue->push({0.0, ds});

  INDOOR_METRICS_ONLY(internal::DijkstraRunStats stats;
                      stats.queue = QueueKind::kBucket;)
  while (!queue->empty()) {
    const auto [d, di] = queue->top();
    queue->pop();
    if (visited[di]) continue;
    visited[di] = 1;
    INDOOR_METRICS_ONLY(++stats.settles;)
    if (di == target) return d;
    const std::span<const DoorGraphEdge> edges = graph.DoorEdges(di);
    const size_t m = edges.size();
    if (m == 0) continue;
    simd::AddBase(d, graph.DoorEdgeWeights(di), cand, m);
    const size_t improved = simd::FilterImprovements(
        cand, graph.DoorEdgeTargets(di), dist.data(), m, idx);
    for (size_t k = 0; k < improved; ++k) {
      const size_t i = idx[k];
      const DoorId to = edges[i].to;
      if (cand[i] < dist[to]) {  // re-check: duplicate targets in one span
        dist[to] = cand[i];
        queue->push({cand[i], to});
        INDOOR_METRICS_ONLY(++stats.relaxations;)
        if (prev_out != nullptr) (*prev_out)[to] = {edges[i].via, di};
      }
    }
  }
  return target == kInvalidId ? 0.0 : dist[target];
}

double RunD2d(const DistanceGraph& graph, DoorId ds, DoorId target,
              DoorDijkstraScratch* scratch, std::vector<PrevEntry>* prev_out,
              QueueKind kind) {
  if (kind == QueueKind::kBucket) {
    return RunD2dBucket(graph, ds, target, &scratch->dist, &scratch->visited,
                        &scratch->bucket, &scratch->relax_cand,
                        &scratch->relax_idx, prev_out);
  }
  return RunD2dHeap(graph, ds, target, &scratch->dist, &scratch->visited,
                    &scratch->heap, prev_out);
}

}  // namespace

DoorDijkstraScratch& TlsDoorDijkstraScratch() {
  static thread_local DoorDijkstraScratch scratch;
  return scratch;
}

double D2dDistance(const DistanceGraph& graph, DoorId ds, DoorId dt,
                   DoorDijkstraScratch* scratch, QueueKind kind) {
  INDOOR_CHECK(dt < graph.plan().door_count());
  if (scratch == nullptr) scratch = &TlsDoorDijkstraScratch();
  return RunD2d(graph, ds, dt, scratch, nullptr, kind);
}

double D2dDistance(const DistanceGraph& graph, DoorId ds, DoorId dt,
                   std::vector<PrevEntry>* prev) {
  INDOOR_CHECK(dt < graph.plan().door_count());
  return RunD2d(graph, ds, dt, &TlsDoorDijkstraScratch(), prev,
                QueueKind::kHeap);
}

void D2dDistancesFrom(const DistanceGraph& graph, DoorId ds,
                      std::vector<double>* dist, std::vector<PrevEntry>* prev,
                      QueueKind kind) {
  // Build-time callers (Md2d rows) run one call per worker-owned buffers;
  // the visited/frontier state is local so concurrent builds stay
  // independent (and bit-identical across thread counts).
  std::vector<char> visited;
  if (kind == QueueKind::kBucket) {
    BucketQueue queue;
    std::vector<double> cand;
    std::vector<uint32_t> idx;
    RunD2dBucket(graph, ds, kInvalidId, dist, &visited, &queue, &cand, &idx,
                 prev);
    return;
  }
  MinHeap<std::pair<double, DoorId>> heap;
  RunD2dHeap(graph, ds, kInvalidId, dist, &visited, &heap, prev);
}

}  // namespace indoor
