#include "core/distance/d2d_distance.h"

#include <queue>

namespace indoor {
namespace {

/// Core of Algorithm 1. Runs until `target` is settled (or the heap drains
/// when target == kInvalidId), returning dist[target] (or 0; the caller
/// reads the arrays for the single-source variant).
double RunD2d(const DistanceGraph& graph, DoorId ds, DoorId target,
              std::vector<double>* dist_out,
              std::vector<PrevEntry>* prev_out) {
  const FloorPlan& plan = graph.plan();
  const size_t n = plan.door_count();
  INDOOR_CHECK(ds < n);

  std::vector<double>& dist = *dist_out;
  dist.assign(n, kInfDistance);
  if (prev_out != nullptr) prev_out->assign(n, PrevEntry{});
  std::vector<char> visited(n, 0);

  using Entry = std::pair<double, DoorId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dist[ds] = 0.0;
  heap.push({0.0, ds});

  while (!heap.empty()) {
    const auto [d, di] = heap.top();
    heap.pop();
    if (visited[di]) continue;
    visited[di] = 1;
    if (di == target) return d;
    // Expand into every partition enterable through di.
    for (PartitionId v : plan.EnterableParts(di)) {
      for (DoorId dj : plan.LeaveDoors(v)) {
        if (visited[dj]) continue;
        const double w = graph.Fd2d(v, di, dj);
        if (w == kInfDistance) continue;
        if (dist[di] + w < dist[dj]) {
          dist[dj] = dist[di] + w;
          heap.push({dist[dj], dj});
          if (prev_out != nullptr) (*prev_out)[dj] = {v, di};
        }
      }
    }
  }
  return target == kInvalidId ? 0.0 : dist[target];
}

}  // namespace

double D2dDistance(const DistanceGraph& graph, DoorId ds, DoorId dt) {
  return D2dDistance(graph, ds, dt, nullptr);
}

double D2dDistance(const DistanceGraph& graph, DoorId ds, DoorId dt,
                   std::vector<PrevEntry>* prev) {
  INDOOR_CHECK(dt < graph.plan().door_count());
  std::vector<double> dist;
  return RunD2d(graph, ds, dt, &dist, prev);
}

void D2dDistancesFrom(const DistanceGraph& graph, DoorId ds,
                      std::vector<double>* dist,
                      std::vector<PrevEntry>* prev) {
  RunD2d(graph, ds, kInvalidId, dist, prev);
}

}  // namespace indoor
