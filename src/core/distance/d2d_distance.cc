#include "core/distance/d2d_distance.h"

#include "core/distance/d2d_runner.h"

namespace indoor {
namespace {

// Algorithm 1's historical entry semantics expressed over the templated
// runner loops (d2d_runner.h): stop at `target`'s settle and report its
// settle distance, or run the frontier dry (target == kInvalidId) and let
// the caller read the arrays.
double RunD2d(const DistanceGraph& graph, DoorId ds, DoorId target,
              DoorDijkstraScratch* scratch, std::vector<PrevEntry>* prev_out,
              QueueKind kind) {
  double found = kInfDistance;
  auto on_settle = [target, &found](DoorId di, double d) {
    if (di != target) return true;
    found = d;
    return false;
  };
  RunDoorDijkstra(graph, ds, scratch, kind, prev_out, on_settle);
  if (target == kInvalidId) return 0.0;
  return found != kInfDistance ? found : scratch->dist[target];
}

}  // namespace

DoorDijkstraScratch& TlsDoorDijkstraScratch() {
  static thread_local DoorDijkstraScratch scratch;
  return scratch;
}

double D2dDistance(const DistanceGraph& graph, DoorId ds, DoorId dt,
                   DoorDijkstraScratch* scratch, QueueKind kind) {
  INDOOR_CHECK(dt < graph.plan().door_count());
  if (scratch == nullptr) scratch = &TlsDoorDijkstraScratch();
  return RunD2d(graph, ds, dt, scratch, nullptr, kind);
}

double D2dDistance(const DistanceGraph& graph, DoorId ds, DoorId dt,
                   std::vector<PrevEntry>* prev) {
  INDOOR_CHECK(dt < graph.plan().door_count());
  return RunD2d(graph, ds, dt, &TlsDoorDijkstraScratch(), prev,
                QueueKind::kHeap);
}

void D2dDistancesFrom(const DistanceGraph& graph, DoorId ds,
                      std::vector<double>* dist, std::vector<PrevEntry>* prev,
                      QueueKind kind) {
  // Build-time callers (Md2d rows) run one call per worker-owned buffers;
  // the visited/frontier state is local so concurrent builds stay
  // independent (and bit-identical across thread counts).
  std::vector<char> visited;
  if (kind == QueueKind::kBucket) {
    BucketQueue queue;
    std::vector<double> cand;
    std::vector<uint32_t> idx;
    RunDoorDijkstraBucket(graph, ds, dist, &visited, &queue, &cand, &idx,
                          prev);
    return;
  }
  MinHeap<std::pair<double, DoorId>> heap;
  RunDoorDijkstraHeap(graph, ds, dist, &visited, &heap, prev);
}

}  // namespace indoor
