// Algorithm 1 (paper §III-D1): door-to-door minimum walking distance.
//
// A Dijkstra-style expansion over DOORS (not partitions): popping door di,
// the search enters each enterable partition v of di and relaxes every
// leaveable door dj of v with weight fd2d(v, di, dj). The paper's pseudocode
// enheaps all doors up front and uses decrease-key; we use the standard
// lazy-insertion equivalent (re-push on improvement, skip settled pops),
// which visits each door at most once, as the paper requires.
//
// Two frontier implementations back the loop (QueueKind): the historical
// binary heap, and the bounded-weight bucket queue (bucket_queue.h) whose
// relaxations additionally run through the SIMD span filter (util/simd.h).
// Both produce bitwise identical distances, settle orders, and prev[]
// trees; the heap remains the default so legacy callers and the reference
// oracles keep their exact historical behavior.

#ifndef INDOOR_CORE_DISTANCE_D2D_DISTANCE_H_
#define INDOOR_CORE_DISTANCE_D2D_DISTANCE_H_

#include <utility>
#include <vector>

#include "core/distance/bucket_queue.h"
#include "core/model/distance_graph.h"
#include "util/min_heap.h"

namespace indoor {

/// prev[dj] = (v, di): door dj was reached from door di through partition v
/// (paper's prev[.] array). Both fields are kInvalidId for the source and
/// for unreached doors.
struct PrevEntry {
  PartitionId partition = kInvalidId;
  DoorId door = kInvalidId;
};

/// Reusable door-level Dijkstra state (dist/visited arrays sized to the
/// door count, both frontiers, and the SIMD relaxation staging buffers).
/// Owned by exactly one thread at a time; buffers keep their capacity
/// across queries, so steady-state door expansions perform no heap
/// allocations (see QueryScratch).
struct DoorDijkstraScratch {
  std::vector<double> dist;
  std::vector<char> visited;
  MinHeap<std::pair<double, DoorId>> heap;
  BucketQueue bucket;
  /// Per-span candidate distances / improved-lane indices for the SIMD
  /// batch relaxation (sized to the graph's max out-degree on first use).
  std::vector<double> relax_cand;
  std::vector<uint32_t> relax_idx;
};

/// Re-arms a frontier for one Dijkstra run over `graph`; overloads let
/// the solver loops template over the frontier type.
inline void ResetFrontier(MinHeap<std::pair<double, DoorId>>* frontier,
                          const DistanceGraph& graph) {
  (void)graph;
  frontier->clear();
}
inline void ResetFrontier(BucketQueue* frontier, const DistanceGraph& graph) {
  frontier->Prepare(graph.max_door_edge_weight());
}

/// d2dDistance(ds, dt): minimum indoor walking distance from door `ds` to
/// door `dt`; kInfDistance when unreachable. A null `scratch` uses the
/// calling thread's buffers. `kind` selects the frontier (results are
/// bitwise identical; the default keeps legacy callers on the heap).
double D2dDistance(const DistanceGraph& graph, DoorId ds, DoorId dt,
                   DoorDijkstraScratch* scratch = nullptr,
                   QueueKind kind = QueueKind::kHeap);

/// As above, also filling `prev` (size = door count) for path
/// reconstruction via ReconstructDoorPath (shortest_path.h).
double D2dDistance(const DistanceGraph& graph, DoorId ds, DoorId dt,
                   std::vector<PrevEntry>* prev);

/// Single-source variant: shortest distances from `ds` to every door
/// (kInfDistance where unreachable). Backs distance-matrix construction
/// (paper §IV-A). `prev` may be null.
void D2dDistancesFrom(const DistanceGraph& graph, DoorId ds,
                      std::vector<double>* dist, std::vector<PrevEntry>* prev,
                      QueueKind kind = QueueKind::kHeap);

/// The calling thread's fallback DoorDijkstraScratch.
DoorDijkstraScratch& TlsDoorDijkstraScratch();

}  // namespace indoor

#endif  // INDOOR_CORE_DISTANCE_D2D_DISTANCE_H_
