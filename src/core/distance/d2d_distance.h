// Algorithm 1 (paper §III-D1): door-to-door minimum walking distance.
//
// A Dijkstra-style expansion over DOORS (not partitions): popping door di,
// the search enters each enterable partition v of di and relaxes every
// leaveable door dj of v with weight fd2d(v, di, dj). The paper's pseudocode
// enheaps all doors up front and uses decrease-key; we use the standard
// lazy-insertion equivalent (re-push on improvement, skip settled pops),
// which visits each door at most once, as the paper requires.

#ifndef INDOOR_CORE_DISTANCE_D2D_DISTANCE_H_
#define INDOOR_CORE_DISTANCE_D2D_DISTANCE_H_

#include <utility>
#include <vector>

#include "core/model/distance_graph.h"
#include "util/min_heap.h"

namespace indoor {

/// prev[dj] = (v, di): door dj was reached from door di through partition v
/// (paper's prev[.] array). Both fields are kInvalidId for the source and
/// for unreached doors.
struct PrevEntry {
  PartitionId partition = kInvalidId;
  DoorId door = kInvalidId;
};

/// Reusable door-level Dijkstra state (dist/visited arrays sized to the
/// door count, and the frontier heap). Owned by exactly one thread at a
/// time; buffers keep their capacity across queries, so steady-state door
/// expansions perform no heap allocations (see QueryScratch).
struct DoorDijkstraScratch {
  std::vector<double> dist;
  std::vector<char> visited;
  MinHeap<std::pair<double, DoorId>> heap;
};

/// d2dDistance(ds, dt): minimum indoor walking distance from door `ds` to
/// door `dt`; kInfDistance when unreachable. A null `scratch` uses
/// function-local buffers.
double D2dDistance(const DistanceGraph& graph, DoorId ds, DoorId dt,
                   DoorDijkstraScratch* scratch = nullptr);

/// As above, also filling `prev` (size = door count) for path
/// reconstruction via ReconstructDoorPath (shortest_path.h).
double D2dDistance(const DistanceGraph& graph, DoorId ds, DoorId dt,
                   std::vector<PrevEntry>* prev);

/// Single-source variant: shortest distances from `ds` to every door
/// (kInfDistance where unreachable). Backs distance-matrix construction
/// (paper §IV-A). `prev` may be null.
void D2dDistancesFrom(const DistanceGraph& graph, DoorId ds,
                      std::vector<double>* dist,
                      std::vector<PrevEntry>* prev);

/// The calling thread's fallback DoorDijkstraScratch.
DoorDijkstraScratch& TlsDoorDijkstraScratch();

}  // namespace indoor

#endif  // INDOOR_CORE_DISTANCE_D2D_DISTANCE_H_
