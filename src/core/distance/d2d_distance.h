// Algorithm 1 (paper §III-D1): door-to-door minimum walking distance.
//
// A Dijkstra-style expansion over DOORS (not partitions): popping door di,
// the search enters each enterable partition v of di and relaxes every
// leaveable door dj of v with weight fd2d(v, di, dj). The paper's pseudocode
// enheaps all doors up front and uses decrease-key; we use the standard
// lazy-insertion equivalent (re-push on improvement, skip settled pops),
// which visits each door at most once, as the paper requires.

#ifndef INDOOR_CORE_DISTANCE_D2D_DISTANCE_H_
#define INDOOR_CORE_DISTANCE_D2D_DISTANCE_H_

#include <vector>

#include "core/model/distance_graph.h"

namespace indoor {

/// prev[dj] = (v, di): door dj was reached from door di through partition v
/// (paper's prev[.] array). Both fields are kInvalidId for the source and
/// for unreached doors.
struct PrevEntry {
  PartitionId partition = kInvalidId;
  DoorId door = kInvalidId;
};

/// d2dDistance(ds, dt): minimum indoor walking distance from door `ds` to
/// door `dt`; kInfDistance when unreachable.
double D2dDistance(const DistanceGraph& graph, DoorId ds, DoorId dt);

/// As above, also filling `prev` (size = door count) for path
/// reconstruction via ReconstructDoorPath (shortest_path.h).
double D2dDistance(const DistanceGraph& graph, DoorId ds, DoorId dt,
                   std::vector<PrevEntry>* prev);

/// Single-source variant: shortest distances from `ds` to every door
/// (kInfDistance where unreachable). Backs distance-matrix construction
/// (paper §IV-A). `prev` may be null.
void D2dDistancesFrom(const DistanceGraph& graph, DoorId ds,
                      std::vector<double>* dist,
                      std::vector<PrevEntry>* prev);

}  // namespace indoor

#endif  // INDOOR_CORE_DISTANCE_D2D_DISTANCE_H_
