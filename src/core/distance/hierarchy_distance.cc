#include "core/distance/hierarchy_distance.h"

#include <algorithm>

#include "core/distance/d2d_runner.h"
#include "core/distance/query_scratch.h"
#include "core/query/query_cache.h"
#include "util/metrics.h"
#include "util/query_log.h"

namespace indoor {
namespace {

/// Sentinel marking a (src, dest) pair whose exact d2d is still pending a
/// graph run; walking distances are non-negative, so -1 cannot collide.
constexpr double kPending = -1.0;

}  // namespace

double Pt2PtDistanceHierarchy(const FloorPlan& plan, const DistanceGraph& graph,
                              const HierarchyIndex& hier, PartitionId vs,
                              const Point& ps, PartitionId vt, const Point& pt,
                              QueryScratch* scratch, const QueryCache* cache,
                              QueueKind kind) {
  INDOOR_LATENCY_SPAN("pt2pt_hier", "query.pt2pt_hier.latency_ns");
  qlog::QueryLogScope qscope(qlog::RecordKind::kDistance, ps.x, ps.y, pt.x,
                             pt.y, 0.0, 0, scratch != nullptr);
  qscope.SetHost(vs);
  INDOOR_CHECK(hier.door_count() == plan.door_count())
      << "hierarchy was built for a different plan";
  scratch = &ResolveQueryScratch(scratch);
  const ScratchDecayGuard decay_guard(scratch);
  const Partition& source_part = plan.partition(vs);
  const Partition& target_part = plan.partition(vt);
  double best = kInfDistance;
  if (vs == vt) {
    best = source_part.IntraDistance(ps, pt, &scratch->geo);
  }
  // Entry/exit legs: the exact code of Pt2PtDistanceMatrix, so every leg
  // value is bit-identical to the flat path's (with or without a cache).
  const auto& dest_doors = plan.EnterDoors(vt);
  auto& dest_leg = scratch->dst_leg;
  dest_leg.resize(dest_doors.size());
  if (cache != nullptr) {
    cache->FieldLegs(FieldKind::kEnterFrom, vt, pt, dest_doors,
                     &scratch->geo, dest_leg.data());
  } else {
    for (size_t j = 0; j < dest_doors.size(); ++j) {
      dest_leg[j] = target_part.IntraDistance(
          plan.door(dest_doors[j]).Midpoint(), pt, &scratch->geo);
    }
  }
  const auto& src_doors = plan.LeaveDoors(vs);
  auto& src_leg = scratch->src_leg;
  src_leg.resize(src_doors.size());
  if (cache != nullptr) {
    cache->FieldLegs(FieldKind::kLeaveFrom, vs, ps, src_doors, &scratch->geo,
                     src_leg.data());
  } else {
    auto& mids = scratch->geo.points;
    mids.clear();
    for (DoorId ds : src_doors) mids.push_back(plan.door(ds).Midpoint());
    source_part.IntraDistancesToMany(ps, mids, &scratch->geo,
                                     src_leg.data());
  }

  // Pass 1: shared-cell pairs straight from the blocks (each d bit-equal
  // to Md2d, each total the same (leg1 + d) + leg2 left-fold as the flat
  // loop, and the final min over the pair multiset is order-independent).
  // Cross-cell pairs stay pending; their composed border route feeds the
  // loss-free cap of pass 2.
  const size_t ns = src_doors.size();
  const size_t nd = dest_doors.size();
  auto& d2d = scratch->d2d_cache;
  d2d.assign(ns * nd, kPending);
  double ub_min = kInfDistance;
  size_t total_pending = 0;
  INDOOR_METRICS_ONLY(uint64_t block_pairs = 0;)
  for (size_t i = 0; i < ns; ++i) {
    const double leg1 = src_leg[i];
    if (leg1 == kInfDistance) continue;
    for (size_t j = 0; j < nd; ++j) {
      if (dest_leg[j] == kInfDistance) continue;
      double dex;
      if (hier.TryExact(src_doors[i], dest_doors[j], &dex)) {
        d2d[i * nd + j] = dex;
        INDOOR_METRICS_ONLY(++block_pairs;)
        if (dex == kInfDistance) continue;
        best = std::min(best, leg1 + dex + dest_leg[j]);
        continue;
      }
      ++total_pending;
      const double ub = hier.UpperBound(src_doors[i], dest_doors[j]);
      if (ub < kInfDistance) {
        ub_min = std::min(ub_min, leg1 + ub + dest_leg[j]);
      }
    }
  }
  INDOOR_METRICS_ONLY(
      INDOOR_COUNTER_ADD("index.hier.pt2pt.block_pairs", block_pairs);)

  // Pass 2: one bounded Dijkstra per source door with pending pairs. The
  // cap C exceeds the final best by construction — every pair's flat total
  // is at most a few ulps above its composed-route value, and the 1e-9
  // slack dominates that rounding — so stopping a run once fl(leg1 + d)
  // rises past min(best, C) (and push-pruning with the same predicate,
  // which is monotone non-increasing) discards only pairs whose totals
  // cannot lower the final min. Settled distances are bit-equal to the
  // flat row entries by the settle-prefix property.
  if (total_pending > 0) {
    const double cap =
        HierarchyIndex::kUpperBoundSlack * std::min(best, ub_min);
    INDOOR_METRICS_ONLY(uint64_t runs = 0;)
    for (size_t i = 0; i < ns; ++i) {
      const double leg1 = src_leg[i];
      if (leg1 == kInfDistance) continue;
      size_t remaining = 0;
      for (size_t j = 0; j < nd; ++j) {
        if (d2d[i * nd + j] == kPending && dest_leg[j] != kInfDistance) {
          ++remaining;
        }
      }
      // Totals through this door are >= leg1, so a row at or above the
      // running best (the flat loop's own skip) or above the cap cannot
      // lower the final min.
      if (remaining == 0 || leg1 >= best || leg1 > cap) continue;
      INDOOR_METRICS_ONLY(++runs;)
      RunDoorDijkstra(
          graph, src_doors[i], &scratch->door, kind, nullptr,
          [&](DoorId di, double d) {
            const double through = leg1 + d;
            if (through > cap || through >= best) return false;
            for (size_t j = 0; j < nd; ++j) {
              if (dest_doors[j] != di || d2d[i * nd + j] != kPending ||
                  dest_leg[j] == kInfDistance) {
                continue;
              }
              d2d[i * nd + j] = d;
              best = std::min(best, through + dest_leg[j]);
              --remaining;
            }
            return remaining != 0;
          },
          [&](double cand) {
            const double through = leg1 + cand;
            return through <= cap && through < best;
          });
    }
    INDOOR_METRICS_ONLY(INDOOR_COUNTER_ADD("index.hier.pt2pt.runs", runs);)
  }
  qscope.SetResult(best < kInfDistance ? 1u : 0u, best);
  return best;
}

double Pt2PtDistanceHierarchy(const PartitionLocator& locator,
                              const DistanceGraph& graph,
                              const HierarchyIndex& hier, const Point& ps,
                              const Point& pt, QueryScratch* scratch,
                              const QueryCache* cache, QueueKind kind) {
  const auto vs = CachedHostPartition(cache, locator, ps);
  const auto vt = CachedHostPartition(cache, locator, pt);
  if (!vs.ok() || !vt.ok()) return kInfDistance;
  return Pt2PtDistanceHierarchy(locator.plan(), graph, hier, vs.value(), ps,
                                vt.value(), pt, scratch, cache, kind);
}

double HierarchyDoorDistance(const DistanceGraph& graph,
                             const HierarchyIndex& hier, DoorId s, DoorId t,
                             QueryScratch* scratch, QueueKind kind) {
  INDOOR_CHECK(s < hier.door_count() && t < hier.door_count());
  double out;
  if (hier.TryExact(s, t, &out)) return out;
  scratch = &ResolveQueryScratch(scratch);
  // The cap exceeds the exact float distance (the composed route's
  // rounding is dominated by the slack), so every node on t's shortest
  // -path-tree branch — whose tentative values never exceed the final
  // d(s, t) — survives both the push prune and the settle stop, and t
  // settles with its exact (flat-bit-equal) distance.
  const double cap = HierarchyIndex::kUpperBoundSlack * hier.UpperBound(s, t);
  INDOOR_COUNTER_INC("index.hier.d2d.runs");
  double result = kInfDistance;
  RunDoorDijkstra(
      graph, s, &scratch->door, kind, nullptr,
      [&](DoorId di, double d) {
        if (d > cap) return false;
        if (di != t) return true;
        result = d;
        return false;
      },
      [&](double cand) { return cand <= cap; });
  return result;
}

}  // namespace indoor
