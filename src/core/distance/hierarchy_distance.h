// Hierarchy-backed position-to-position distance: the Md2d-free twin of
// matrix_distance.h. Same-cell door pairs are served straight from the
// hierarchy's per-cell blocks (bit-equal to the flat Md2d entries by the
// settle-prefix contract, hierarchy_index.h); cross-cell pairs run a
// BOUNDED door Dijkstra whose stop and push-prune predicates are loss-free
// — composed border sums act only as search caps, never as answers — so
// the returned distance is bit-identical to Pt2PtDistanceMatrix on the
// flat index.

#ifndef INDOOR_CORE_DISTANCE_HIERARCHY_DISTANCE_H_
#define INDOOR_CORE_DISTANCE_HIERARCHY_DISTANCE_H_

#include "core/index/hierarchy_index.h"
#include "core/model/locator.h"

namespace indoor {

struct QueryScratch;
class QueryCache;

/// Exact minimum walking distance over the hierarchy index; bit-identical
/// to Pt2PtDistanceMatrix against the flat Md2d of the same plan. `hier`
/// and `graph` must both come from `locator.plan()`. A null `scratch`
/// falls back to the calling thread's TlsQueryScratch(); a non-null
/// `cache` serves host probes and entry/exit legs exactly as the flat
/// path does. `kind` picks the Dijkstra frontier for the bounded
/// cross-cell runs (values are identical either way).
double Pt2PtDistanceHierarchy(const PartitionLocator& locator,
                              const DistanceGraph& graph,
                              const HierarchyIndex& hier, const Point& ps,
                              const Point& pt, QueryScratch* scratch = nullptr,
                              const QueryCache* cache = nullptr,
                              QueueKind kind = QueueKind::kBucket);

/// Variant with both host partitions already known (e.g. stored objects).
double Pt2PtDistanceHierarchy(const FloorPlan& plan, const DistanceGraph& graph,
                              const HierarchyIndex& hier, PartitionId vs,
                              const Point& ps, PartitionId vt, const Point& pt,
                              QueryScratch* scratch = nullptr,
                              const QueryCache* cache = nullptr,
                              QueueKind kind = QueueKind::kBucket);

/// Exact door-to-door distance d(s -> t), bit-identical to the flat
/// Md2d[s][t]: a block lookup when s and t share a cell, else a bounded
/// Dijkstra capped at kUpperBoundSlack times the composed border route.
double HierarchyDoorDistance(const DistanceGraph& graph,
                             const HierarchyIndex& hier, DoorId s, DoorId t,
                             QueryScratch* scratch = nullptr,
                             QueueKind kind = QueueKind::kBucket);

}  // namespace indoor

#endif  // INDOOR_CORE_DISTANCE_HIERARCHY_DISTANCE_H_
