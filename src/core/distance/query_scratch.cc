#include "core/distance/query_scratch.h"

#include <algorithm>

namespace indoor {
namespace {

template <typename T>
size_t VecCapacityBytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

template <typename T>
size_t VecUsedBytes(const std::vector<T>& v) {
  return v.size() * sizeof(T);
}

size_t GeoCapacityBytes(const GeodesicScratch& g) {
  return VecCapacityBytes(g.dist) + VecCapacityBytes(g.prev) +
         VecCapacityBytes(g.settled) +
         g.heap.capacity() * sizeof(std::pair<double, int>) +
         VecCapacityBytes(g.pending) + VecCapacityBytes(g.points) +
         VecCapacityBytes(g.values) + VecCapacityBytes(g.slots);
}

size_t GeoUsedBytes(const GeodesicScratch& g) {
  return VecUsedBytes(g.dist) + VecUsedBytes(g.prev) +
         VecUsedBytes(g.settled) +
         g.heap.size() * sizeof(std::pair<double, int>) +
         VecUsedBytes(g.pending) + VecUsedBytes(g.points) +
         VecUsedBytes(g.values) + VecUsedBytes(g.slots);
}

void GeoShrink(GeodesicScratch* g) {
  g->dist.shrink_to_fit();
  g->prev.shrink_to_fit();
  g->settled.shrink_to_fit();
  g->heap.shrink_to_fit();
  g->pending.shrink_to_fit();
  g->points.shrink_to_fit();
  g->values.shrink_to_fit();
  g->slots.shrink_to_fit();
}

}  // namespace

QueryScratch& TlsQueryScratch() {
  static thread_local QueryScratch scratch;
  return scratch;
}

size_t QueryScratch::CapacityBytes() const {
  return GeoCapacityBytes(geo) + GeoCapacityBytes(bucket.geo) +
         VecCapacityBytes(bucket.cell_order) +
         VecCapacityBytes(bucket.filter_mask) + VecCapacityBytes(door.dist) +
         VecCapacityBytes(door.visited) +
         door.heap.capacity() * sizeof(std::pair<double, DoorId>) +
         door.bucket.CapacityBytes() + VecCapacityBytes(door.relax_cand) +
         VecCapacityBytes(door.relax_idx) +
         VecCapacityBytes(source_doors) + VecCapacityBytes(cand_doors) +
         VecCapacityBytes(src_leg) + VecCapacityBytes(dst_leg) +
         VecCapacityBytes(d2d_cache) + VecCapacityBytes(prev) +
         collector.CapacityBytes() + VecCapacityBytes(neighbors) +
         VecCapacityBytes(result_deps) + VecCapacityBytes(approx_bound) +
         VecCapacityBytes(approx_order) + VecCapacityBytes(approx_dq);
}

size_t QueryScratch::UsedBytes() const {
  return GeoUsedBytes(geo) + GeoUsedBytes(bucket.geo) +
         VecUsedBytes(bucket.cell_order) + VecUsedBytes(bucket.filter_mask) +
         VecUsedBytes(door.dist) + VecUsedBytes(door.visited) +
         door.heap.size() * sizeof(std::pair<double, DoorId>) +
         door.bucket.size() * sizeof(std::pair<double, DoorId>) +
         VecUsedBytes(door.relax_cand) + VecUsedBytes(door.relax_idx) +
         VecUsedBytes(source_doors) + VecUsedBytes(cand_doors) +
         VecUsedBytes(src_leg) + VecUsedBytes(dst_leg) +
         VecUsedBytes(d2d_cache) + VecUsedBytes(prev) +
         collector.size() * sizeof(std::pair<double, ObjectId>) +
         VecUsedBytes(neighbors) + VecUsedBytes(result_deps) +
         VecUsedBytes(approx_bound) + VecUsedBytes(approx_order) +
         VecUsedBytes(approx_dq);
}

void QueryScratch::ShrinkToFit() {
  GeoShrink(&geo);
  GeoShrink(&bucket.geo);
  bucket.cell_order.shrink_to_fit();
  bucket.filter_mask.shrink_to_fit();
  door.dist.shrink_to_fit();
  door.visited.shrink_to_fit();
  door.heap.shrink_to_fit();
  door.bucket.ShrinkToFit();
  door.relax_cand.shrink_to_fit();
  door.relax_idx.shrink_to_fit();
  source_doors.shrink_to_fit();
  cand_doors.shrink_to_fit();
  src_leg.shrink_to_fit();
  dst_leg.shrink_to_fit();
  d2d_cache.shrink_to_fit();
  prev.shrink_to_fit();
  collector.ShrinkToFit();
  neighbors.shrink_to_fit();
  result_deps.shrink_to_fit();
  approx_bound.shrink_to_fit();
  approx_order.shrink_to_fit();
  approx_dq.shrink_to_fit();
}

void QueryScratch::NoteQueryDone() {
  decay_peak_bytes_ = std::max(decay_peak_bytes_, UsedBytes());
  if (--decay_countdown_ > 0) return;
  decay_countdown_ = kDecayInterval;
  const size_t watermark = std::max(decay_peak_bytes_, kDecayMinBytes);
  decay_peak_bytes_ = 0;
  if (CapacityBytes() > 4 * watermark) {
    ShrinkToFit();
    INDOOR_COUNTER_INC("scratch.decays");
  }
}

}  // namespace indoor
