#include "core/distance/query_scratch.h"

namespace indoor {

QueryScratch& TlsQueryScratch() {
  static thread_local QueryScratch scratch;
  return scratch;
}

}  // namespace indoor
