#include "core/distance/pt2pt_distance.h"

#include <algorithm>
#include <queue>

#include "core/distance/d2d_distance.h"

namespace indoor {
namespace internal {

Endpoints ResolveEndpoints(const DistanceContext& ctx, const Point& ps,
                           const Point& pt) {
  Endpoints endpoints;
  auto vs = ctx.locator->GetHostPartition(ps);
  auto vt = ctx.locator->GetHostPartition(pt);
  if (vs.ok()) endpoints.vs = vs.value();
  if (vt.ok()) endpoints.vt = vt.value();
  return endpoints;
}

double DirectCandidate(const DistanceContext& ctx,
                       const Endpoints& endpoints, const Point& ps,
                       const Point& pt) {
  if (endpoints.vs != endpoints.vt) return kInfDistance;
  return ctx.graph->plan().partition(endpoints.vs).IntraDistance(ps, pt);
}

std::vector<DoorId> PrunedSourceDoors(const FloorPlan& plan, PartitionId vs,
                                      PartitionId vt) {
  std::vector<DoorId> doors;
  for (DoorId ds : plan.LeaveDoors(vs)) {
    // np: the partition in D2P_enterable(ds) \ {vs}.
    PartitionId np = kInvalidId;
    for (PartitionId v : plan.EnterableParts(ds)) {
      if (v != vs) np = v;
    }
    if (np != kInvalidId && np != vt && plan.LeaveDoors(np).size() == 1 &&
        plan.LeaveDoors(np)[0] == ds) {
      continue;  // dead end: one could only come straight back through ds
    }
    doors.push_back(ds);
  }
  return doors;  // LeaveDoors is sorted, so iteration order is ascending id
}

}  // namespace internal

using internal::DirectCandidate;
using internal::Endpoints;
using internal::PrunedSourceDoors;
using internal::ResolveEndpoints;

double Pt2PtDistanceBasic(const DistanceContext& ctx, const Point& ps,
                          const Point& pt) {
  const FloorPlan& plan = ctx.graph->plan();
  const Endpoints endpoints = ResolveEndpoints(ctx, ps, pt);
  if (!endpoints.ok()) return kInfDistance;

  double dist = DirectCandidate(ctx, endpoints, ps, pt);
  // Algorithm 2: every (leaveable source door, enterable destination door)
  // pair via a blind d2dDistance call.
  for (DoorId ds : plan.LeaveDoors(endpoints.vs)) {
    const double dist1 = ctx.locator->DistV(endpoints.vs, ps, ds);
    if (dist1 == kInfDistance) continue;
    for (DoorId dt : plan.EnterDoors(endpoints.vt)) {
      const double dist2 = ctx.locator->DistV(endpoints.vt, pt, dt);
      if (dist2 == kInfDistance) continue;
      const double d2d = D2dDistance(*ctx.graph, ds, dt);
      if (d2d == kInfDistance) continue;
      dist = std::min(dist, dist1 + d2d + dist2);
    }
  }
  return dist;
}

double Pt2PtDistanceVirtual(const DistanceContext& ctx, const Point& ps,
                            const Point& pt) {
  const FloorPlan& plan = ctx.graph->plan();
  const Endpoints endpoints = ResolveEndpoints(ctx, ps, pt);
  if (!endpoints.ok()) return kInfDistance;

  double best = DirectCandidate(ctx, endpoints, ps, pt);

  // One Dijkstra seeded with every source door at its distV offset.
  const size_t n = plan.door_count();
  std::vector<double> dist(n, kInfDistance);
  std::vector<char> visited(n, 0);
  using Entry = std::pair<double, DoorId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (DoorId ds : plan.LeaveDoors(endpoints.vs)) {
    const double d0 = ctx.locator->DistV(endpoints.vs, ps, ds);
    if (d0 == kInfDistance) continue;
    if (d0 < dist[ds]) {
      dist[ds] = d0;
      heap.push({d0, ds});
    }
  }

  // Destination doors with their exit legs.
  const auto& dest_doors = plan.EnterDoors(endpoints.vt);
  std::vector<double> exit_leg(dest_doors.size());
  double min_exit = kInfDistance;
  for (size_t i = 0; i < dest_doors.size(); ++i) {
    exit_leg[i] = ctx.locator->DistV(endpoints.vt, pt, dest_doors[i]);
    min_exit = std::min(min_exit, exit_leg[i]);
  }

  while (!heap.empty()) {
    const auto [d, di] = heap.top();
    heap.pop();
    if (visited[di]) continue;
    visited[di] = 1;
    if (d + min_exit >= best) break;  // no remaining door can improve
    const auto it =
        std::lower_bound(dest_doors.begin(), dest_doors.end(), di);
    if (it != dest_doors.end() && *it == di) {
      const double leg = exit_leg[it - dest_doors.begin()];
      if (leg != kInfDistance) best = std::min(best, d + leg);
    }
    for (PartitionId v : plan.EnterableParts(di)) {
      for (DoorId dj : plan.LeaveDoors(v)) {
        if (visited[dj]) continue;
        const double w = ctx.graph->Fd2d(v, di, dj);
        if (w == kInfDistance) continue;
        if (d + w < dist[dj]) {
          dist[dj] = d + w;
          heap.push({dist[dj], dj});
        }
      }
    }
  }
  return best;
}

}  // namespace indoor
