#include "core/distance/pt2pt_distance.h"

#include <algorithm>

#include "core/distance/d2d_distance.h"
#include "core/distance/dijkstra_stats.h"
#include "core/distance/query_scratch.h"
#include "core/index/landmark_index.h"
#include "core/query/query_cache.h"
#include "util/metrics.h"
#include "util/simd.h"

namespace indoor {
namespace internal {

Endpoints ResolveEndpoints(const DistanceContext& ctx, const Point& ps,
                           const Point& pt) {
  Endpoints endpoints;
  if (ctx.source_hint != kInvalidId) {
    endpoints.vs = ctx.source_hint;
  } else {
    auto vs = CachedHostPartition(ctx.cache, *ctx.locator, ps);
    if (vs.ok()) endpoints.vs = vs.value();
  }
  if (ctx.target_hint != kInvalidId) {
    endpoints.vt = ctx.target_hint;
  } else {
    auto vt = CachedHostPartition(ctx.cache, *ctx.locator, pt);
    if (vt.ok()) endpoints.vt = vt.value();
  }
  return endpoints;
}

double DirectCandidate(const DistanceContext& ctx,
                       const Endpoints& endpoints, const Point& ps,
                       const Point& pt, GeodesicScratch* scratch) {
  if (endpoints.vs != endpoints.vt) return kInfDistance;
  return ctx.graph->plan().partition(endpoints.vs).IntraDistance(ps, pt,
                                                                 scratch);
}

void PrunedSourceDoors(const FloorPlan& plan, PartitionId vs, PartitionId vt,
                       std::vector<DoorId>* out) {
  out->clear();
  for (DoorId ds : plan.LeaveDoors(vs)) {
    // np: the partition in D2P_enterable(ds) \ {vs}.
    PartitionId np = kInvalidId;
    for (PartitionId v : plan.EnterableParts(ds)) {
      if (v != vs) np = v;
    }
    if (np != kInvalidId && np != vt && plan.LeaveDoors(np).size() == 1 &&
        plan.LeaveDoors(np)[0] == ds) {
      continue;  // dead end: one could only come straight back through ds
    }
    out->push_back(ds);
  }
  // LeaveDoors is sorted, so iteration order is ascending id.
}

std::vector<DoorId> PrunedSourceDoors(const FloorPlan& plan, PartitionId vs,
                                      PartitionId vt) {
  std::vector<DoorId> doors;
  PrunedSourceDoors(plan, vs, vt, &doors);
  return doors;
}

}  // namespace internal

using internal::DirectCandidate;
using internal::Endpoints;
using internal::ResolveEndpoints;

namespace {

/// The virtual-source expansion shared by both frontier kinds. With
/// landmarks attached, a frontier push is dropped when even the optimistic
/// completion `cand + lb_set(door) + min_exit` cannot beat the running
/// best. The set bound aggregates the destination rows once per query:
///   min_tf[l] = min over finite-exit-leg targets t of fwd[t][l]
///   max_tb[l] = max over those targets of bwd[t][l]  (infinities kept:
///               a target unable to reach landmark l invalidates the term)
/// so lb_set(v) <= min over targets t of d(v, t). Pruning never changes
/// the returned distance: the doors on one optimal path always bound
/// strictly below `best` until best reaches the optimum, and any pruned
/// completion was already >= the final answer. dist[] is left untouched on
/// a prune, so a later cheaper relaxation of the same door re-evaluates.
template <typename Frontier>
double VirtualExpand(const DistanceContext& ctx, Frontier& frontier,
                     std::vector<double>& dist, std::vector<char>& visited,
                     std::span<const DoorId> dest_doors,
                     const std::vector<double>& exit_leg, double min_exit,
                     double best, QueueKind kind) {
  const LandmarkIndex* const lm = ctx.landmarks;
  size_t lcount = 0;
  double min_tf[LandmarkIndex::kMaxCount];
  double max_tb[LandmarkIndex::kMaxCount];
  if (lm != nullptr && lm->valid()) {
    lcount = lm->count();
    for (size_t l = 0; l < lcount; ++l) {
      min_tf[l] = kInfDistance;
      max_tb[l] = -kInfDistance;
    }
    for (size_t j = 0; j < dest_doors.size(); ++j) {
      if (exit_leg[j] == kInfDistance) continue;
      const double* const tf = lm->ForwardRow(dest_doors[j]);
      const double* const tb = lm->BackwardRow(dest_doors[j]);
      for (size_t l = 0; l < lcount; ++l) {
        min_tf[l] = std::min(min_tf[l], tf[l]);
        max_tb[l] = std::max(max_tb[l], tb[l]);
      }
    }
  }

  INDOOR_METRICS_ONLY(internal::DijkstraRunStats stats; stats.queue = kind;)
  (void)kind;
  while (!frontier.empty()) {
    const auto [d, di] = frontier.top();
    frontier.pop();
    if (visited[di]) continue;
    visited[di] = 1;
    INDOOR_METRICS_ONLY(++stats.settles;)
    if (d + min_exit >= best) break;  // no remaining door can improve
    const auto it = std::lower_bound(dest_doors.begin(), dest_doors.end(), di);
    if (it != dest_doors.end() && *it == di) {
      const double leg = exit_leg[it - dest_doors.begin()];
      if (leg != kInfDistance) best = std::min(best, d + leg);
    }
    for (const DoorGraphEdge& e : ctx.graph->DoorEdges(di)) {
      if (visited[e.to]) continue;
      const double cand = d + e.weight;
      if (cand < dist[e.to]) {
        if (lcount != 0) {
          const double lb = simd::AltSetBound(lm->ForwardRow(e.to),
                                              lm->BackwardRow(e.to), min_tf,
                                              max_tb, lcount);
          if (cand + lb + min_exit >= best) {
            INDOOR_METRICS_ONLY(++stats.landmark_prunes;)
            continue;
          }
        }
        dist[e.to] = cand;
        frontier.push({cand, e.to});
        INDOOR_METRICS_ONLY(++stats.relaxations;)
      }
    }
  }
  return best;
}

}  // namespace

double Pt2PtDistanceBasic(const DistanceContext& ctx, const Point& ps,
                          const Point& pt, QueryScratch* scratch) {
  INDOOR_LATENCY_SPAN("pt2pt_basic", "query.pt2pt_basic.latency_ns");
  const FloorPlan& plan = ctx.graph->plan();
  const Endpoints endpoints = ResolveEndpoints(ctx, ps, pt);
  if (!endpoints.ok()) return kInfDistance;
  scratch = &ResolveQueryScratch(scratch);
  const ScratchDecayGuard decay_guard(scratch);

  double dist = DirectCandidate(ctx, endpoints, ps, pt, &scratch->geo);

  // Entry legs ||ps, ds|| and exit legs ||dt, pt||, each resolved with one
  // batched geodesic solve instead of a Dijkstra per door. The exit legs
  // are loop-invariant in ds, so unlike Algorithm 2's pseudocode they are
  // computed once (the values are identical either way).
  const auto& src_doors = plan.LeaveDoors(endpoints.vs);
  const auto& dst_doors = plan.EnterDoors(endpoints.vt);
  auto& src_leg = scratch->src_leg;
  auto& dst_leg = scratch->dst_leg;
  src_leg.resize(src_doors.size());
  dst_leg.resize(dst_doors.size());
  {
    INDOOR_TRACE_SPAN("entry_exit_legs");
    CachedFieldLegs(ctx.cache, *ctx.locator, FieldKind::kLeaveFrom,
                    endpoints.vs, ps, src_doors, &scratch->geo,
                    src_leg.data());
    CachedFieldLegs(ctx.cache, *ctx.locator, FieldKind::kEnterTo,
                    endpoints.vt, pt, dst_doors, &scratch->geo,
                    dst_leg.data());
  }

  // Algorithm 2: every (leaveable source door, enterable destination door)
  // pair via a blind d2dDistance call. With landmarks attached, a pair
  // whose triangle-inequality lower bound already meets the running
  // minimum is skipped outright — the skipped call could only have
  // returned a candidate >= its lower bound, so the final minimum is
  // unchanged.
  {
    INDOOR_TRACE_SPAN("door_pairs");
    const LandmarkIndex* const lm = ctx.landmarks;
    uint64_t lm_prunes = 0;
    for (size_t i = 0; i < src_doors.size(); ++i) {
      if (src_leg[i] == kInfDistance) continue;
      for (size_t j = 0; j < dst_doors.size(); ++j) {
        if (dst_leg[j] == kInfDistance) continue;
        if (lm != nullptr &&
            src_leg[i] + lm->LowerBound(src_doors[i], dst_doors[j]) +
                    dst_leg[j] >=
                dist) {
          ++lm_prunes;
          continue;
        }
        const double d2d = D2dDistance(*ctx.graph, src_doors[i], dst_doors[j],
                                       &scratch->door, ctx.queue);
        if (d2d == kInfDistance) continue;
        dist = std::min(dist, src_leg[i] + d2d + dst_leg[j]);
      }
    }
    if (lm_prunes != 0) {
      INDOOR_COUNTER_ADD("distance.dijkstra.prunes.landmark", lm_prunes);
    }
  }
  return dist;
}

double Pt2PtDistanceVirtual(const DistanceContext& ctx, const Point& ps,
                            const Point& pt, QueryScratch* scratch) {
  INDOOR_LATENCY_SPAN("pt2pt_virtual", "query.pt2pt_virtual.latency_ns");
  const FloorPlan& plan = ctx.graph->plan();
  const Endpoints endpoints = ResolveEndpoints(ctx, ps, pt);
  if (!endpoints.ok()) return kInfDistance;
  scratch = &ResolveQueryScratch(scratch);
  const ScratchDecayGuard decay_guard(scratch);

  double best = DirectCandidate(ctx, endpoints, ps, pt, &scratch->geo);

  // One Dijkstra seeded with every source door at its distV offset.
  const size_t n = plan.door_count();
  auto& dist = scratch->door.dist;
  auto& visited = scratch->door.visited;
  dist.assign(n, kInfDistance);
  visited.assign(n, 0);

  const auto& src_doors = plan.LeaveDoors(endpoints.vs);
  auto& src_leg = scratch->src_leg;
  src_leg.resize(src_doors.size());
  CachedFieldLegs(ctx.cache, *ctx.locator, FieldKind::kLeaveFrom,
                  endpoints.vs, ps, src_doors, &scratch->geo, src_leg.data());

  // Destination doors with their exit legs.
  const auto& dest_doors = plan.EnterDoors(endpoints.vt);
  auto& exit_leg = scratch->dst_leg;
  exit_leg.resize(dest_doors.size());
  CachedFieldLegs(ctx.cache, *ctx.locator, FieldKind::kEnterTo, endpoints.vt,
                  pt, dest_doors, &scratch->geo, exit_leg.data());
  double min_exit = kInfDistance;
  for (const double leg : exit_leg) min_exit = std::min(min_exit, leg);

  const auto seed = [&](auto& frontier) {
    for (size_t i = 0; i < src_doors.size(); ++i) {
      const double d0 = src_leg[i];
      if (d0 == kInfDistance) continue;
      if (d0 < dist[src_doors[i]]) {
        dist[src_doors[i]] = d0;
        frontier.push({d0, src_doors[i]});
      }
    }
  };

  {
    INDOOR_TRACE_SPAN("virtual_dijkstra");
    if (ctx.queue == QueueKind::kBucket) {
      BucketQueue& frontier = scratch->door.bucket;
      ResetFrontier(&frontier, *ctx.graph);
      seed(frontier);
      best = VirtualExpand(ctx, frontier, dist, visited, dest_doors, exit_leg,
                           min_exit, best, QueueKind::kBucket);
    } else {
      auto& frontier = scratch->door.heap;
      ResetFrontier(&frontier, *ctx.graph);
      seed(frontier);
      best = VirtualExpand(ctx, frontier, dist, visited, dest_doors, exit_leg,
                           min_exit, best, QueueKind::kHeap);
    }
  }
  return best;
}

}  // namespace indoor
