#include "core/distance/reverse_field.h"

#include "core/distance/d2d_distance.h"
#include "core/distance/query_scratch.h"

namespace indoor {

ReverseDistanceField::ReverseDistanceField(const DistanceContext& ctx,
                                           const Point& target)
    : ctx_(ctx), target_(target) {
  const FloorPlan& plan = ctx.graph->plan();
  door_dist_.assign(plan.door_count(), kInfDistance);
  const auto host = ctx.locator->GetHostPartition(target);
  if (!host.ok()) return;
  host_ = host.value();

  std::vector<char> visited(plan.door_count(), 0);
  // Dijkstra on the reversed door graph: settled dj relaxes every di with a
  // forward edge di -> dj, iterated over the transposed CSR rows. Final
  // distances are relaxation-order independent, so they match the nested
  // LeaveableParts/EnterDoors loops bit-for-bit — with either frontier
  // kind (this builder intentionally emits no Dijkstra metrics).
  const auto build = [&](auto& frontier) {
    // Seeds: crossing an entering door of the host partition leaves only
    // the final intra leg to the target. The legs keep the historical
    // door->target orientation (each its own solve), so seed values match
    // exactly.
    for (DoorId dt : plan.EnterDoors(host_)) {
      const double leg = plan.partition(host_).IntraDistance(
          plan.door(dt).Midpoint(), target);
      if (leg == kInfDistance) continue;
      if (leg < door_dist_[dt]) {
        door_dist_[dt] = leg;
        frontier.push({leg, dt});
      }
    }
    while (!frontier.empty()) {
      const auto [d, dj] = frontier.top();
      frontier.pop();
      if (visited[dj]) continue;
      visited[dj] = 1;
      for (const DoorGraphEdge& e : ctx.graph->ReverseDoorEdges(dj)) {
        if (visited[e.to]) continue;
        if (d + e.weight < door_dist_[e.to]) {
          door_dist_[e.to] = d + e.weight;
          frontier.push({door_dist_[e.to], e.to});
        }
      }
    }
  };
  if (ctx.queue == QueueKind::kBucket) {
    BucketQueue frontier;
    ResetFrontier(&frontier, *ctx.graph);
    build(frontier);
  } else {
    MinHeap<std::pair<double, DoorId>> frontier;
    build(frontier);
  }
}

double ReverseDistanceField::DistanceFrom(PartitionId v,
                                          const Point& p) const {
  if (!valid()) return kInfDistance;
  const FloorPlan& plan = ctx_.graph->plan();
  const Partition& part = plan.partition(v);
  double best = kInfDistance;
  // All legs share the source `p`, so one batched solve settles the direct
  // leg and every leaving door exactly (DistVMany == per-door
  // IntraDistance for doors touching `v`).
  QueryScratch& scratch = TlsQueryScratch();
  if (v == host_) {
    best = part.IntraDistance(p, target_, &scratch.geo);
  }
  const std::vector<DoorId>& doors = plan.LeaveDoors(v);
  auto& leg = scratch.src_leg;
  leg.resize(doors.size());
  ctx_.locator->DistVMany(v, p, doors, &scratch.geo, leg.data());
  for (size_t i = 0; i < doors.size(); ++i) {
    const DoorId ds = doors[i];
    if (door_dist_[ds] == kInfDistance || leg[i] == kInfDistance) continue;
    const double total = leg[i] + door_dist_[ds];
    if (total < best) best = total;
  }
  return best;
}

double ReverseDistanceField::DistanceFrom(const Point& p) const {
  if (!valid()) return kInfDistance;
  const auto host = ctx_.locator->GetHostPartition(p);
  if (!host.ok()) return kInfDistance;
  return DistanceFrom(host.value(), p);
}

}  // namespace indoor
