#include "core/distance/reverse_field.h"

#include <queue>

namespace indoor {

ReverseDistanceField::ReverseDistanceField(const DistanceContext& ctx,
                                           const Point& target)
    : ctx_(ctx), target_(target) {
  const FloorPlan& plan = ctx.graph->plan();
  door_dist_.assign(plan.door_count(), kInfDistance);
  const auto host = ctx.locator->GetHostPartition(target);
  if (!host.ok()) return;
  host_ = host.value();

  using Entry = std::pair<double, DoorId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  std::vector<char> visited(plan.door_count(), 0);
  // Seeds: crossing an entering door of the host partition leaves only the
  // final intra leg to the target.
  for (DoorId dt : plan.EnterDoors(host_)) {
    const double leg = plan.partition(host_).IntraDistance(
        plan.door(dt).Midpoint(), target);
    if (leg == kInfDistance) continue;
    if (leg < door_dist_[dt]) {
      door_dist_[dt] = leg;
      heap.push({leg, dt});
    }
  }
  // Dijkstra on the reversed door graph: settled dj relaxes every di that
  // can reach dj through a shared partition (forward edge di -> dj).
  while (!heap.empty()) {
    const auto [d, dj] = heap.top();
    heap.pop();
    if (visited[dj]) continue;
    visited[dj] = 1;
    for (PartitionId v : plan.LeaveableParts(dj)) {
      for (DoorId di : plan.EnterDoors(v)) {
        if (visited[di]) continue;
        const double w = ctx.graph->Fd2d(v, di, dj);
        if (w == kInfDistance) continue;
        if (d + w < door_dist_[di]) {
          door_dist_[di] = d + w;
          heap.push({door_dist_[di], di});
        }
      }
    }
  }
}

double ReverseDistanceField::DistanceFrom(PartitionId v,
                                          const Point& p) const {
  if (!valid()) return kInfDistance;
  const FloorPlan& plan = ctx_.graph->plan();
  const Partition& part = plan.partition(v);
  double best = kInfDistance;
  if (v == host_) {
    best = part.IntraDistance(p, target_);
  }
  for (DoorId ds : plan.LeaveDoors(v)) {
    if (door_dist_[ds] == kInfDistance) continue;
    const double leg = part.IntraDistance(p, plan.door(ds).Midpoint());
    if (leg == kInfDistance) continue;
    const double total = leg + door_dist_[ds];
    if (total < best) best = total;
  }
  return best;
}

double ReverseDistanceField::DistanceFrom(const Point& p) const {
  if (!valid()) return kInfDistance;
  const auto host = ctx_.locator->GetHostPartition(p);
  if (!host.ok()) return kInfDistance;
  return DistanceFrom(host.value(), p);
}

}  // namespace indoor
