// The distance-aware model Gdist = (V, Ea, L, fdv, fd2d) (paper §III-C1):
// the accessibility graph extended with the two distance constructs.
//
//   fdv(d, v)      — the longest distance one can reach within enterable
//                    partition v from door d; infinity otherwise.
//   fd2d(v, di, dj) — the intra-partition distance ||di, dj||v when di
//                    enters v and dj leaves v; 0 when di == dj touches v;
//                    infinity otherwise.
//
// Both are precomputed per partition at build time from the partition
// geometry (obstructed where a partition has obstacles, scaled for
// flattened staircases).

#ifndef INDOOR_CORE_MODEL_DISTANCE_GRAPH_H_
#define INDOOR_CORE_MODEL_DISTANCE_GRAPH_H_

#include <vector>

#include "core/model/accessibility_graph.h"

namespace indoor {

/// Gdist over a FloorPlan. The plan must outlive the graph.
class DistanceGraph {
 public:
  explicit DistanceGraph(const FloorPlan& plan);

  const FloorPlan& plan() const { return *plan_; }
  const AccessibilityGraph& accessibility() const { return accs_; }

  /// fdv: longest distance reachable inside `v` from door `d` when `v` is an
  /// enterable partition of `d` (paper §III-C1 item 4); kInfDistance
  /// otherwise.
  double Fdv(DoorId d, PartitionId v) const;

  /// fd2d: intra-partition door-to-door distance (paper §III-C1 item 5).
  /// Returns ||di, dj||v when `di` enters and `dj` leaves `v`; 0 when
  /// di == dj and the door touches `v`; kInfDistance otherwise.
  double Fd2d(PartitionId v, DoorId di, DoorId dj) const;

  /// Raw intra-partition distance between two touching doors of `v`,
  /// ignoring direction permissions (used by index construction and the
  /// iNav baseline). kInfDistance if either door does not touch `v`.
  double IntraDoorDistance(PartitionId v, DoorId di, DoorId dj) const;

 private:
  /// Index of door `d` within TouchingDoors(v), or -1.
  int LocalDoorIndex(PartitionId v, DoorId d) const;

  const FloorPlan* plan_;
  AccessibilityGraph accs_;
  // Per (door, enterable-partition slot) fdv values, aligned with
  // FloorPlan::EnterableParts(d).
  std::vector<std::vector<double>> fdv_;
  // Per partition: dense intra-distance matrix over TouchingDoors(v)
  // (row-major n x n, n = touching door count).
  std::vector<std::vector<double>> intra_;
};

}  // namespace indoor

#endif  // INDOOR_CORE_MODEL_DISTANCE_GRAPH_H_
