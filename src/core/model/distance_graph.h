// The distance-aware model Gdist = (V, Ea, L, fdv, fd2d) (paper §III-C1):
// the accessibility graph extended with the two distance constructs.
//
//   fdv(d, v)      — the longest distance one can reach within enterable
//                    partition v from door d; infinity otherwise.
//   fd2d(v, di, dj) — the intra-partition distance ||di, dj||v when di
//                    enters v and dj leaves v; 0 when di == dj touches v;
//                    infinity otherwise.
//
// Both are precomputed per partition at build time from the partition
// geometry (obstructed where a partition has obstacles, scaled for
// flattened staircases).
//
// For the door-level Dijkstras that dominate query time, the
// EnterableParts/LeaveDoors/Fd2d triple loop is additionally flattened
// into a CSR successor list per door (DoorEdges) and its transpose
// (ReverseDoorEdges): one contiguous scan per expansion instead of nested
// id lists plus binary-searched Fd2d lookups.

#ifndef INDOOR_CORE_MODEL_DISTANCE_GRAPH_H_
#define INDOOR_CORE_MODEL_DISTANCE_GRAPH_H_

#include <span>
#include <vector>

#include "core/model/accessibility_graph.h"

namespace indoor {

/// One flattened door-graph edge: from the row's door one can reach door
/// `to` by crossing partition `via` at cost `weight` (a finite fd2d value).
struct DoorGraphEdge {
  DoorId to;
  PartitionId via;
  double weight;
};

/// Gdist over a FloorPlan. The plan must outlive the graph.
class DistanceGraph {
 public:
  explicit DistanceGraph(const FloorPlan& plan);

  const FloorPlan& plan() const { return *plan_; }
  const AccessibilityGraph& accessibility() const { return accs_; }

  /// fdv: longest distance reachable inside `v` from door `d` when `v` is an
  /// enterable partition of `d` (paper §III-C1 item 4); kInfDistance
  /// otherwise.
  double Fdv(DoorId d, PartitionId v) const;

  /// fd2d: intra-partition door-to-door distance (paper §III-C1 item 5).
  /// Returns ||di, dj||v when `di` enters and `dj` leaves `v`; 0 when
  /// di == dj and the door touches `v`; kInfDistance otherwise.
  double Fd2d(PartitionId v, DoorId di, DoorId dj) const;

  /// Raw intra-partition distance between two touching doors of `v`,
  /// ignoring direction permissions (used by index construction and the
  /// iNav baseline). kInfDistance if either door does not touch `v`.
  double IntraDoorDistance(PartitionId v, DoorId di, DoorId dj) const;

  /// Finite successor edges of door `d`, i.e. the flattening of
  ///   for v in EnterableParts(d): for dj in LeaveDoors(v): Fd2d(v, d, dj)
  /// in exactly that enumeration order, with infinite entries and the
  /// trivial self edge (dj == d) dropped. Dijkstra expansions over this
  /// list relax the same (target, weight) sequence as the nested loops,
  /// so distances and prev[] trees are bit-identical.
  std::span<const DoorGraphEdge> DoorEdges(DoorId d) const {
    INDOOR_CHECK(d + 1 < door_offsets_.size());
    return {door_edges_.data() + door_offsets_[d],
            door_offsets_[d + 1] - door_offsets_[d]};
  }

  /// Transposed door graph: every edge (e.to -> d via e.via at e.weight)
  /// of the forward lists, grouped by target door `d`. Backs reverse
  /// distance fields (Dijkstra toward a fixed target).
  std::span<const DoorGraphEdge> ReverseDoorEdges(DoorId d) const {
    INDOOR_CHECK(d + 1 < rev_door_offsets_.size());
    return {rev_door_edges_.data() + rev_door_offsets_[d],
            rev_door_offsets_[d + 1] - rev_door_offsets_[d]};
  }

  /// Structure-of-arrays twin of DoorEdges(d): the edge weights of door
  /// d's row as a contiguous double array (same order as DoorEdges).
  /// Backs the SIMD batch relaxation in the bucket-queue Dijkstra path
  /// (util/simd.h); d must have at least one edge or the span is empty.
  const double* DoorEdgeWeights(DoorId d) const {
    return edge_weights_.data() + door_offsets_[d];
  }

  /// Structure-of-arrays twin of DoorEdges(d): the edge target door ids
  /// as a contiguous uint32 array (same order as DoorEdges).
  const uint32_t* DoorEdgeTargets(DoorId d) const {
    return edge_targets_.data() + door_offsets_[d];
  }

  /// Largest finite door-graph edge weight (0 when the graph has no
  /// edges). Bounds the Dijkstra key window for BucketQueue::Prepare.
  double max_door_edge_weight() const { return max_edge_weight_; }

  /// Largest forward out-degree over all doors — the staging-buffer size
  /// the SIMD relaxation needs for any one edge span.
  size_t max_door_out_degree() const { return max_out_degree_; }

 private:
  /// Index of door `d` within TouchingDoors(v), or -1.
  int LocalDoorIndex(PartitionId v, DoorId d) const;

  /// Flattens the door successor lists (and their transpose) from the
  /// fd2d tables. Called once at construction.
  void BuildDoorCsr();

  const FloorPlan* plan_;
  AccessibilityGraph accs_;
  // Per (door, enterable-partition slot) fdv values, aligned with
  // FloorPlan::EnterableParts(d).
  std::vector<std::vector<double>> fdv_;
  // Per partition: dense intra-distance matrix over TouchingDoors(v)
  // (row-major n x n, n = touching door count).
  std::vector<std::vector<double>> intra_;
  // Door-graph adjacency in CSR: successors of door d are
  // door_edges_[door_offsets_[d] .. door_offsets_[d+1]).
  std::vector<size_t> door_offsets_;
  std::vector<DoorGraphEdge> door_edges_;
  std::vector<size_t> rev_door_offsets_;
  std::vector<DoorGraphEdge> rev_door_edges_;
  // SoA twins of door_edges_ (weights/targets split out for SIMD spans),
  // plus the bounded-weight facts the bucket queue relies on.
  std::vector<double> edge_weights_;
  std::vector<uint32_t> edge_targets_;
  double max_edge_weight_ = 0.0;
  size_t max_out_degree_ = 0;
};

}  // namespace indoor

#endif  // INDOOR_CORE_MODEL_DISTANCE_GRAPH_H_
