#include "core/model/accessibility_graph.h"

#include <deque>

namespace indoor {

AccessibilityGraph::AccessibilityGraph(const FloorPlan& plan)
    : plan_(&plan) {
  out_edges_.assign(plan.partition_count(), {});
  for (const Door& door : plan.doors()) {
    for (const DoorConnection& c : plan.D2P(door.id())) {
      const AccessEdge edge{c.from, c.to, door.id()};
      edges_.push_back(edge);
      out_edges_[c.from].push_back(edge);
    }
  }
}

std::vector<PartitionId> AccessibilityGraph::ReachableFrom(
    PartitionId source) const {
  INDOOR_CHECK(source < plan_->partition_count());
  std::vector<char> seen(plan_->partition_count(), 0);
  std::deque<PartitionId> queue{source};
  seen[source] = 1;
  std::vector<PartitionId> out;
  while (!queue.empty()) {
    const PartitionId v = queue.front();
    queue.pop_front();
    out.push_back(v);
    for (const AccessEdge& e : out_edges_[v]) {
      if (!seen[e.to]) {
        seen[e.to] = 1;
        queue.push_back(e.to);
      }
    }
  }
  return out;
}

bool AccessibilityGraph::IsStronglyConnected() const {
  const size_t n = plan_->partition_count();
  if (n == 0) return true;
  if (ReachableFrom(0).size() != n) return false;
  // Reverse reachability from vertex 0.
  std::vector<std::vector<PartitionId>> rev(n);
  for (const AccessEdge& e : edges_) rev[e.to].push_back(e.from);
  std::vector<char> seen(n, 0);
  std::deque<PartitionId> queue{0};
  seen[0] = 1;
  size_t count = 0;
  while (!queue.empty()) {
    const PartitionId v = queue.front();
    queue.pop_front();
    ++count;
    for (PartitionId u : rev[v]) {
      if (!seen[u]) {
        seen[u] = 1;
        queue.push_back(u);
      }
    }
  }
  return count == n;
}

}  // namespace indoor
