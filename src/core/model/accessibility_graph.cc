#include "core/model/accessibility_graph.h"

#include <deque>

namespace indoor {

AccessibilityGraph::AccessibilityGraph(const FloorPlan& plan)
    : plan_(&plan) {
  for (const Door& door : plan.doors()) {
    for (const DoorConnection& c : plan.D2P(door.id())) {
      edges_.push_back({c.from, c.to, door.id()});
    }
  }
  // Flatten per-partition out-lists (door order within each row, as
  // before) into CSR via counting sort on the source partition.
  const size_t n = plan.partition_count();
  out_offsets_.assign(n + 1, 0);
  for (const AccessEdge& e : edges_) ++out_offsets_[e.from + 1];
  for (size_t i = 1; i <= n; ++i) out_offsets_[i] += out_offsets_[i - 1];
  out_edges_.resize(edges_.size());
  std::vector<size_t> cursor(out_offsets_.begin(), out_offsets_.end() - 1);
  for (const AccessEdge& e : edges_) out_edges_[cursor[e.from]++] = e;
}

std::vector<PartitionId> AccessibilityGraph::ReachableFrom(
    PartitionId source) const {
  INDOOR_CHECK(source < plan_->partition_count());
  std::vector<char> seen(plan_->partition_count(), 0);
  std::deque<PartitionId> queue{source};
  seen[source] = 1;
  std::vector<PartitionId> out;
  while (!queue.empty()) {
    const PartitionId v = queue.front();
    queue.pop_front();
    out.push_back(v);
    for (const AccessEdge& e : OutEdges(v)) {
      if (!seen[e.to]) {
        seen[e.to] = 1;
        queue.push_back(e.to);
      }
    }
  }
  return out;
}

bool AccessibilityGraph::IsStronglyConnected() const {
  const size_t n = plan_->partition_count();
  if (n == 0) return true;
  if (ReachableFrom(0).size() != n) return false;
  // Reverse reachability from vertex 0.
  std::vector<std::vector<PartitionId>> rev(n);
  for (const AccessEdge& e : edges_) rev[e.to].push_back(e.from);
  std::vector<char> seen(n, 0);
  std::deque<PartitionId> queue{0};
  seen[0] = 1;
  size_t count = 0;
  while (!queue.empty()) {
    const PartitionId v = queue.front();
    queue.pop_front();
    ++count;
    for (PartitionId u : rev[v]) {
      if (!seen[u]) {
        seen[u] = 1;
        queue.push_back(u);
      }
    }
  }
  return count == n;
}

}  // namespace indoor
