#include "core/model/locator.h"

#include <sstream>

#include "util/metrics.h"

namespace indoor {

PartitionLocator::PartitionLocator(const FloorPlan& plan) : plan_(&plan) {
  std::vector<std::pair<Rect, uint32_t>> items;
  items.reserve(plan.partition_count());
  for (const Partition& part : plan.partitions()) {
    items.push_back(
        {part.footprint().outer().BoundingBox(), part.id()});
  }
  rtree_.BulkLoad(std::move(items));
}

Result<PartitionId> PartitionLocator::GetHostPartition(
    const Point& p) const {
  INDOOR_COUNTER_INC("index.locator.lookups");
  PartitionId best = kInvalidId;
  double best_area = 0.0;
  for (uint32_t id : rtree_.QueryPoint(p)) {
    const Partition& part = plan_->partition(id);
    if (!part.Contains(p)) continue;
    const double area = part.footprint().outer().Area();
    const bool better =
        best == kInvalidId ||
        // Non-outdoor beats outdoor; then smaller area; then lower id.
        (plan_->partition(best).IsOutdoor() && !part.IsOutdoor()) ||
        (plan_->partition(best).IsOutdoor() == part.IsOutdoor() &&
         (area < best_area || (area == best_area && id < best)));
    if (better) {
      best = id;
      best_area = area;
    }
  }
  if (best == kInvalidId) {
    INDOOR_COUNTER_INC("index.locator.misses");
    std::ostringstream msg;
    msg << "position " << p << " is not inside any partition";
    return Status::NotFound(msg.str());
  }
  return best;
}

double PartitionLocator::DistV(PartitionId v, const Point& p, DoorId d,
                               GeodesicScratch* scratch) const {
  if (!plan_->Touches(d, v)) return kInfDistance;
  return plan_->partition(v).IntraDistance(p, plan_->door(d).Midpoint(),
                                           scratch);
}

void PartitionLocator::DistVMany(PartitionId v, const Point& p,
                                 std::span<const DoorId> doors,
                                 GeodesicScratch* scratch,
                                 double* out) const {
  INDOOR_COUNTER_INC("distance.distv.calls");
  INDOOR_COUNTER_ADD("distance.distv.doors", doors.size());
  INDOOR_HISTOGRAM_RECORD("distance.distv.batch_size", doors.size());
  if (scratch == nullptr) scratch = &TlsGeodesicScratch();
  auto& pts = scratch->points;
  auto& slots = scratch->slots;
  auto& values = scratch->values;
  pts.clear();
  slots.clear();
  for (size_t i = 0; i < doors.size(); ++i) {
    if (!plan_->Touches(doors[i], v)) {
      out[i] = kInfDistance;
      continue;
    }
    pts.push_back(plan_->door(doors[i]).Midpoint());
    slots.push_back(i);
  }
  values.resize(pts.size());
  plan_->partition(v).IntraDistancesToMany(p, pts, scratch, values.data());
  for (size_t j = 0; j < slots.size(); ++j) out[slots[j]] = values[j];
}

double PartitionLocator::DistV(const Point& p, DoorId d) const {
  auto host = GetHostPartition(p);
  if (!host.ok()) return kInfDistance;
  return DistV(host.value(), p, d);
}

}  // namespace indoor
