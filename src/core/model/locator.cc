#include "core/model/locator.h"

#include <sstream>

namespace indoor {

PartitionLocator::PartitionLocator(const FloorPlan& plan) : plan_(&plan) {
  std::vector<std::pair<Rect, uint32_t>> items;
  items.reserve(plan.partition_count());
  for (const Partition& part : plan.partitions()) {
    items.push_back(
        {part.footprint().outer().BoundingBox(), part.id()});
  }
  rtree_.BulkLoad(std::move(items));
}

Result<PartitionId> PartitionLocator::GetHostPartition(
    const Point& p) const {
  PartitionId best = kInvalidId;
  double best_area = 0.0;
  for (uint32_t id : rtree_.QueryPoint(p)) {
    const Partition& part = plan_->partition(id);
    if (!part.Contains(p)) continue;
    const double area = part.footprint().outer().Area();
    const bool better =
        best == kInvalidId ||
        // Non-outdoor beats outdoor; then smaller area; then lower id.
        (plan_->partition(best).IsOutdoor() && !part.IsOutdoor()) ||
        (plan_->partition(best).IsOutdoor() == part.IsOutdoor() &&
         (area < best_area || (area == best_area && id < best)));
    if (better) {
      best = id;
      best_area = area;
    }
  }
  if (best == kInvalidId) {
    std::ostringstream msg;
    msg << "position " << p << " is not inside any partition";
    return Status::NotFound(msg.str());
  }
  return best;
}

double PartitionLocator::DistV(PartitionId v, const Point& p,
                               DoorId d) const {
  if (!plan_->Touches(d, v)) return kInfDistance;
  return plan_->partition(v).IntraDistance(p, plan_->door(d).Midpoint());
}

double PartitionLocator::DistV(const Point& p, DoorId d) const {
  auto host = GetHostPartition(p);
  if (!host.ok()) return kInfDistance;
  return DistV(host.value(), p, d);
}

}  // namespace indoor
