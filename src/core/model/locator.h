// getHostPartition and distV (paper §III-D2): locating the partition that
// hosts an indoor position via an R-tree point query, and the shortest
// intra-partition distance between a position and a touching door.

#ifndef INDOOR_CORE_MODEL_LOCATOR_H_
#define INDOOR_CORE_MODEL_LOCATOR_H_

#include <span>

#include "indoor/floor_plan.h"
#include "rtree/rtree.h"
#include "util/result.h"

namespace indoor {

/// Point-locates positions in a floor plan. The plan must outlive the
/// locator.
class PartitionLocator {
 public:
  explicit PartitionLocator(const FloorPlan& plan);

  const FloorPlan& plan() const { return *plan_; }

  /// getHostPartition(p): the partition containing `p`. R-tree candidates
  /// are refined by exact free-space containment; where footprints share a
  /// boundary the non-outdoor partition with the smallest area wins (ties
  /// by lowest id), so results are deterministic.
  Result<PartitionId> GetHostPartition(const Point& p) const;

  /// distV(p, d) with a known host partition `v` (paper Eq. 6): shortest
  /// intra-partition walking distance from `p` to door `d`'s midpoint
  /// without leaving `v`; kInfDistance if `d` does not touch `v`. A null
  /// `scratch` falls back to the calling thread's scratch.
  double DistV(PartitionId v, const Point& p, DoorId d,
               GeodesicScratch* scratch = nullptr) const;

  /// Batched distV: out[i] is EXACTLY the value DistV(v, p, doors[i])
  /// would return, but all touching doors share one geodesic solve from
  /// `p` (ObstructedRegion::DistancesToMany). This is the entry/exit-leg
  /// primitive of the pt2pt/range/kNN hot path.
  void DistVMany(PartitionId v, const Point& p, std::span<const DoorId> doors,
                 GeodesicScratch* scratch, double* out) const;

  /// distV(p, d) resolving the host partition internally; kInfDistance if
  /// `p` is not indoors.
  double DistV(const Point& p, DoorId d) const;

 private:
  const FloorPlan* plan_;
  RTree rtree_;
};

}  // namespace indoor

#endif  // INDOOR_CORE_MODEL_LOCATOR_H_
