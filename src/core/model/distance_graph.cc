#include "core/model/distance_graph.h"

#include <algorithm>

namespace indoor {

DistanceGraph::DistanceGraph(const FloorPlan& plan)
    : plan_(&plan), accs_(plan) {
  // fdv: for every door, for every enterable partition.
  fdv_.assign(plan.door_count(), {});
  for (const Door& door : plan.doors()) {
    const Point mid = door.Midpoint();
    auto& row = fdv_[door.id()];
    for (PartitionId v : plan.EnterableParts(door.id())) {
      row.push_back(plan.partition(v).MaxDistanceFrom(mid));
    }
  }
  // Intra-partition door-to-door distances.
  intra_.assign(plan.partition_count(), {});
  for (const Partition& part : plan.partitions()) {
    const auto& doors = plan.TouchingDoors(part.id());
    const size_t n = doors.size();
    auto& matrix = intra_[part.id()];
    matrix.assign(n * n, 0.0);
    for (size_t i = 0; i < n; ++i) {
      const Point a = plan.door(doors[i]).Midpoint();
      for (size_t j = i + 1; j < n; ++j) {
        const Point b = plan.door(doors[j]).Midpoint();
        const double d = part.IntraDistance(a, b);
        matrix[i * n + j] = d;
        matrix[j * n + i] = d;
      }
    }
  }
  BuildDoorCsr();
}

void DistanceGraph::BuildDoorCsr() {
  const FloorPlan& plan = *plan_;
  const size_t n = plan.door_count();
  door_offsets_.assign(n + 1, 0);
  door_edges_.clear();
  // Forward lists, flattened in the exact order the door-Dijkstra loops
  // enumerate: for v in EnterableParts(di), for dj in LeaveDoors(v).
  // Infinite fd2d entries are unreachable and a dj == di relaxation can
  // never improve dist[di] (di is already settled when its row is
  // expanded), so both are dropped here without changing any search.
  for (DoorId di = 0; di < n; ++di) {
    door_offsets_[di] = door_edges_.size();
    for (PartitionId v : plan.EnterableParts(di)) {
      for (DoorId dj : plan.LeaveDoors(v)) {
        if (dj == di) continue;
        const double w = Fd2d(v, di, dj);
        if (w == kInfDistance) continue;
        door_edges_.push_back({dj, v, w});
      }
    }
  }
  door_offsets_[n] = door_edges_.size();

  // SoA twins + bounded-weight facts for the bucket-queue/SIMD path.
  edge_weights_.resize(door_edges_.size());
  edge_targets_.resize(door_edges_.size());
  max_edge_weight_ = 0.0;
  max_out_degree_ = 0;
  for (size_t k = 0; k < door_edges_.size(); ++k) {
    edge_weights_[k] = door_edges_[k].weight;
    edge_targets_[k] = door_edges_[k].to;
    if (door_edges_[k].weight > max_edge_weight_) {
      max_edge_weight_ = door_edges_[k].weight;
    }
  }
  for (DoorId di = 0; di < n; ++di) {
    max_out_degree_ =
        std::max(max_out_degree_, door_offsets_[di + 1] - door_offsets_[di]);
  }

  // Transpose: rev row dj holds every forward edge di -> dj as
  // {di, via, weight}. Reverse Dijkstras relax the same weights, so their
  // final distances match the nested LeaveableParts/EnterDoors loops
  // bit-for-bit (Dijkstra distances are relaxation-order independent).
  rev_door_offsets_.assign(n + 1, 0);
  for (const DoorGraphEdge& e : door_edges_) {
    ++rev_door_offsets_[e.to + 1];
  }
  for (size_t i = 1; i <= n; ++i) {
    rev_door_offsets_[i] += rev_door_offsets_[i - 1];
  }
  rev_door_edges_.resize(door_edges_.size());
  std::vector<size_t> cursor(rev_door_offsets_.begin(),
                             rev_door_offsets_.end() - 1);
  for (DoorId di = 0; di < n; ++di) {
    for (size_t k = door_offsets_[di]; k < door_offsets_[di + 1]; ++k) {
      const DoorGraphEdge& e = door_edges_[k];
      rev_door_edges_[cursor[e.to]++] = {di, e.via, e.weight};
    }
  }
}

int DistanceGraph::LocalDoorIndex(PartitionId v, DoorId d) const {
  const auto& doors = plan_->TouchingDoors(v);
  const auto it = std::lower_bound(doors.begin(), doors.end(), d);
  if (it == doors.end() || *it != d) return -1;
  return static_cast<int>(it - doors.begin());
}

double DistanceGraph::Fdv(DoorId d, PartitionId v) const {
  INDOOR_CHECK(d < plan_->door_count());
  const auto& parts = plan_->EnterableParts(d);
  for (size_t i = 0; i < parts.size(); ++i) {
    if (parts[i] == v) return fdv_[d][i];
  }
  return kInfDistance;
}

double DistanceGraph::IntraDoorDistance(PartitionId v, DoorId di,
                                        DoorId dj) const {
  const int a = LocalDoorIndex(v, di);
  const int b = LocalDoorIndex(v, dj);
  if (a < 0 || b < 0) return kInfDistance;
  const size_t n = plan_->TouchingDoors(v).size();
  return intra_[v][static_cast<size_t>(a) * n + static_cast<size_t>(b)];
}

double DistanceGraph::Fd2d(PartitionId v, DoorId di, DoorId dj) const {
  INDOOR_CHECK(v < plan_->partition_count());
  if (di == dj) {
    // fd2d(v, d, d) = 0 when d touches v.
    return plan_->Touches(di, v) ? 0.0 : kInfDistance;
  }
  // Requires di in P2D_enter(v) and dj in P2D_leave(v).
  const auto& enter = plan_->EnterDoors(v);
  if (!std::binary_search(enter.begin(), enter.end(), di)) {
    return kInfDistance;
  }
  const auto& leave = plan_->LeaveDoors(v);
  if (!std::binary_search(leave.begin(), leave.end(), dj)) {
    return kInfDistance;
  }
  return IntraDoorDistance(v, di, dj);
}

}  // namespace indoor
