#include "core/model/distance_graph.h"

#include <algorithm>

namespace indoor {

DistanceGraph::DistanceGraph(const FloorPlan& plan)
    : plan_(&plan), accs_(plan) {
  // fdv: for every door, for every enterable partition.
  fdv_.assign(plan.door_count(), {});
  for (const Door& door : plan.doors()) {
    const Point mid = door.Midpoint();
    auto& row = fdv_[door.id()];
    for (PartitionId v : plan.EnterableParts(door.id())) {
      row.push_back(plan.partition(v).MaxDistanceFrom(mid));
    }
  }
  // Intra-partition door-to-door distances.
  intra_.assign(plan.partition_count(), {});
  for (const Partition& part : plan.partitions()) {
    const auto& doors = plan.TouchingDoors(part.id());
    const size_t n = doors.size();
    auto& matrix = intra_[part.id()];
    matrix.assign(n * n, 0.0);
    for (size_t i = 0; i < n; ++i) {
      const Point a = plan.door(doors[i]).Midpoint();
      for (size_t j = i + 1; j < n; ++j) {
        const Point b = plan.door(doors[j]).Midpoint();
        const double d = part.IntraDistance(a, b);
        matrix[i * n + j] = d;
        matrix[j * n + i] = d;
      }
    }
  }
}

int DistanceGraph::LocalDoorIndex(PartitionId v, DoorId d) const {
  const auto& doors = plan_->TouchingDoors(v);
  const auto it = std::lower_bound(doors.begin(), doors.end(), d);
  if (it == doors.end() || *it != d) return -1;
  return static_cast<int>(it - doors.begin());
}

double DistanceGraph::Fdv(DoorId d, PartitionId v) const {
  INDOOR_CHECK(d < plan_->door_count());
  const auto& parts = plan_->EnterableParts(d);
  for (size_t i = 0; i < parts.size(); ++i) {
    if (parts[i] == v) return fdv_[d][i];
  }
  return kInfDistance;
}

double DistanceGraph::IntraDoorDistance(PartitionId v, DoorId di,
                                        DoorId dj) const {
  const int a = LocalDoorIndex(v, di);
  const int b = LocalDoorIndex(v, dj);
  if (a < 0 || b < 0) return kInfDistance;
  const size_t n = plan_->TouchingDoors(v).size();
  return intra_[v][static_cast<size_t>(a) * n + static_cast<size_t>(b)];
}

double DistanceGraph::Fd2d(PartitionId v, DoorId di, DoorId dj) const {
  INDOOR_CHECK(v < plan_->partition_count());
  if (di == dj) {
    // fd2d(v, d, d) = 0 when d touches v.
    return plan_->Touches(di, v) ? 0.0 : kInfDistance;
  }
  // Requires di in P2D_enter(v) and dj in P2D_leave(v).
  const auto& enter = plan_->EnterDoors(v);
  if (!std::binary_search(enter.begin(), enter.end(), di)) {
    return kInfDistance;
  }
  const auto& leave = plan_->LeaveDoors(v);
  if (!std::binary_search(leave.begin(), leave.end(), dj)) {
    return kInfDistance;
  }
  return IntraDoorDistance(v, di, dj);
}

}  // namespace indoor
