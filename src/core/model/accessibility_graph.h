// The accessibility base graph Gaccs = (V, Ea, L) (paper §III-B): vertices
// are partitions, labeled directed edges are the movements doors permit.
// It captures topology only; DistanceGraph (distance_graph.h) extends it
// with the fdv/fd2d distance constructs.

#ifndef INDOOR_CORE_MODEL_ACCESSIBILITY_GRAPH_H_
#define INDOOR_CORE_MODEL_ACCESSIBILITY_GRAPH_H_

#include <span>
#include <vector>

#include "indoor/floor_plan.h"

namespace indoor {

/// One labeled directed edge (vi, vj, dk) of Ea.
struct AccessEdge {
  PartitionId from;
  PartitionId to;
  DoorId door;  // the edge label from L = Sdoor
};

/// Gaccs: a lightweight directed-multigraph view over a FloorPlan. The plan
/// must outlive the graph.
class AccessibilityGraph {
 public:
  explicit AccessibilityGraph(const FloorPlan& plan);

  const FloorPlan& plan() const { return *plan_; }

  /// All labeled edges Ea = {(vi, vj, dk) | (vi, vj) in D2P(dk)}.
  const std::vector<AccessEdge>& edges() const { return edges_; }

  /// Out-edges of partition `v`, in the contiguous CSR row for `v`
  /// (grouped per partition from the door-order edge list).
  std::span<const AccessEdge> OutEdges(PartitionId v) const {
    INDOOR_CHECK(v + 1 < out_offsets_.size());
    return {out_edges_.data() + out_offsets_[v],
            out_offsets_[v + 1] - out_offsets_[v]};
  }

  /// Partitions reachable from `source` by directed traversal (BFS),
  /// including `source` itself.
  std::vector<PartitionId> ReachableFrom(PartitionId source) const;

  /// True if every partition can reach every other partition (strong
  /// connectivity); buildings with one-way doors may legitimately fail.
  bool IsStronglyConnected() const;

 private:
  const FloorPlan* plan_;
  std::vector<AccessEdge> edges_;
  // Out-adjacency in CSR: out-edges of v are
  // out_edges_[out_offsets_[v] .. out_offsets_[v+1]).
  std::vector<size_t> out_offsets_;
  std::vector<AccessEdge> out_edges_;
};

}  // namespace indoor

#endif  // INDOOR_CORE_MODEL_ACCESSIBILITY_GRAPH_H_
