// Range query Qr(q, r) (paper §V-A1, Algorithm 5): all indoor objects
// within indoor walking distance r of position q.

#ifndef INDOOR_CORE_QUERY_RANGE_QUERY_H_
#define INDOOR_CORE_QUERY_RANGE_QUERY_H_

#include <vector>

#include "core/index/index_framework.h"

namespace indoor {

struct QueryScratch;

/// Query knobs.
struct RangeQueryOptions {
  /// Use Midx to scan doors nearest-first with early termination. When
  /// false, every row entry of Md2d is examined (the paper's "without d2d
  /// index" configuration in Fig. 8).
  bool use_index_matrix = true;
};

/// Executes Qr(q, r). Returns the qualifying object ids, sorted and unique
/// (one partition can be reached through several doors). Returns an empty
/// result when q is not inside any partition. A null `scratch` falls back
/// to the calling thread's TlsQueryScratch().
std::vector<ObjectId> RangeQuery(const IndexFramework& index, const Point& q,
                                 double r, RangeQueryOptions options = {},
                                 QueryScratch* scratch = nullptr);

}  // namespace indoor

#endif  // INDOOR_CORE_QUERY_RANGE_QUERY_H_
