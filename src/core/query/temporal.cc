#include "core/query/temporal.h"

#include "core/distance/query_scratch.h"
#include "util/min_heap.h"

namespace indoor {
namespace internal {

double SnapshotDijkstra(const DistanceGraph& graph,
                        const DoorSchedule& schedule, double time,
                        const std::vector<std::pair<DoorId, double>>& seeds,
                        DoorId target, std::vector<double>* dist_out,
                        std::vector<PrevEntry>* prev) {
  const FloorPlan& plan = graph.plan();
  const size_t n = plan.door_count();
  std::vector<double> local;
  std::vector<double>& dist = dist_out != nullptr ? *dist_out : local;
  dist.assign(n, kInfDistance);
  if (prev != nullptr) prev->assign(n, PrevEntry{});
  std::vector<char> visited(n, 0);
  MinHeap<std::pair<double, DoorId>> heap;
  for (const auto& [d, w] : seeds) {
    if (!schedule.IsOpen(d, time)) continue;
    if (w < dist[d]) {
      dist[d] = w;
      heap.push({w, d});
    }
  }
  while (!heap.empty()) {
    const auto [d, di] = heap.top();
    heap.pop();
    if (visited[di]) continue;
    visited[di] = 1;
    if (di == target) return d;
    for (const DoorGraphEdge& e : graph.DoorEdges(di)) {
      if (visited[e.to] || !schedule.IsOpen(e.to, time)) continue;
      if (d + e.weight < dist[e.to]) {
        dist[e.to] = d + e.weight;
        if (prev != nullptr) (*prev)[e.to] = {e.via, di};
        heap.push({dist[e.to], e.to});
      }
    }
  }
  return target == kInvalidId ? 0.0 : dist[target];
}

}  // namespace internal

double D2dDistanceAtTime(const DistanceGraph& graph,
                         const DoorSchedule& schedule, double time,
                         DoorId ds, DoorId dt) {
  INDOOR_CHECK(ds < graph.plan().door_count());
  INDOOR_CHECK(dt < graph.plan().door_count());
  return internal::SnapshotDijkstra(graph, schedule, time, {{ds, 0.0}}, dt,
                                    nullptr, nullptr);
}

double Pt2PtDistanceAtTime(const DistanceContext& ctx,
                           const DoorSchedule& schedule, double time,
                           const Point& ps, const Point& pt) {
  const FloorPlan& plan = ctx.graph->plan();
  const auto endpoints = internal::ResolveEndpoints(ctx, ps, pt);
  if (!endpoints.ok()) return kInfDistance;

  QueryScratch& scratch = TlsQueryScratch();
  double best = internal::DirectCandidate(ctx, endpoints, ps, pt,
                                          &scratch.geo);

  const auto& src_doors = plan.LeaveDoors(endpoints.vs);
  auto& src_leg = scratch.src_leg;
  src_leg.resize(src_doors.size());
  ctx.locator->DistVMany(endpoints.vs, ps, src_doors, &scratch.geo,
                         src_leg.data());
  std::vector<std::pair<DoorId, double>> seeds;
  for (size_t i = 0; i < src_doors.size(); ++i) {
    if (src_leg[i] != kInfDistance) seeds.push_back({src_doors[i], src_leg[i]});
  }
  std::vector<double> dist;
  internal::SnapshotDijkstra(*ctx.graph, schedule, time, seeds, kInvalidId,
                             &dist, nullptr);
  const auto& dst_doors = plan.EnterDoors(endpoints.vt);
  auto& dst_leg = scratch.dst_leg;
  dst_leg.resize(dst_doors.size());
  ctx.locator->DistVMany(endpoints.vt, pt, dst_doors, &scratch.geo,
                         dst_leg.data());
  for (size_t j = 0; j < dst_doors.size(); ++j) {
    if (dist[dst_doors[j]] == kInfDistance) continue;
    if (dst_leg[j] == kInfDistance) continue;
    best = std::min(best, dist[dst_doors[j]] + dst_leg[j]);
  }
  return best;
}

}  // namespace indoor
