#include "core/query/temporal.h"

#include <queue>

namespace indoor {
namespace internal {

double SnapshotDijkstra(const DistanceGraph& graph,
                        const DoorSchedule& schedule, double time,
                        const std::vector<std::pair<DoorId, double>>& seeds,
                        DoorId target, std::vector<double>* dist_out,
                        std::vector<PrevEntry>* prev) {
  const FloorPlan& plan = graph.plan();
  const size_t n = plan.door_count();
  std::vector<double> local;
  std::vector<double>& dist = dist_out != nullptr ? *dist_out : local;
  dist.assign(n, kInfDistance);
  if (prev != nullptr) prev->assign(n, PrevEntry{});
  std::vector<char> visited(n, 0);
  using Entry = std::pair<double, DoorId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (const auto& [d, w] : seeds) {
    if (!schedule.IsOpen(d, time)) continue;
    if (w < dist[d]) {
      dist[d] = w;
      heap.push({w, d});
    }
  }
  while (!heap.empty()) {
    const auto [d, di] = heap.top();
    heap.pop();
    if (visited[di]) continue;
    visited[di] = 1;
    if (di == target) return d;
    for (PartitionId v : plan.EnterableParts(di)) {
      for (DoorId dj : plan.LeaveDoors(v)) {
        if (visited[dj] || !schedule.IsOpen(dj, time)) continue;
        const double w = graph.Fd2d(v, di, dj);
        if (w == kInfDistance) continue;
        if (d + w < dist[dj]) {
          dist[dj] = d + w;
          if (prev != nullptr) (*prev)[dj] = {v, di};
          heap.push({dist[dj], dj});
        }
      }
    }
  }
  return target == kInvalidId ? 0.0 : dist[target];
}

}  // namespace internal

double D2dDistanceAtTime(const DistanceGraph& graph,
                         const DoorSchedule& schedule, double time,
                         DoorId ds, DoorId dt) {
  INDOOR_CHECK(ds < graph.plan().door_count());
  INDOOR_CHECK(dt < graph.plan().door_count());
  return internal::SnapshotDijkstra(graph, schedule, time, {{ds, 0.0}}, dt,
                                    nullptr, nullptr);
}

double Pt2PtDistanceAtTime(const DistanceContext& ctx,
                           const DoorSchedule& schedule, double time,
                           const Point& ps, const Point& pt) {
  const FloorPlan& plan = ctx.graph->plan();
  const auto endpoints = internal::ResolveEndpoints(ctx, ps, pt);
  if (!endpoints.ok()) return kInfDistance;

  double best = internal::DirectCandidate(ctx, endpoints, ps, pt);

  std::vector<std::pair<DoorId, double>> seeds;
  for (DoorId ds : plan.LeaveDoors(endpoints.vs)) {
    const double leg = ctx.locator->DistV(endpoints.vs, ps, ds);
    if (leg != kInfDistance) seeds.push_back({ds, leg});
  }
  std::vector<double> dist;
  internal::SnapshotDijkstra(*ctx.graph, schedule, time, seeds, kInvalidId,
                             &dist, nullptr);
  for (DoorId dt : plan.EnterDoors(endpoints.vt)) {
    if (dist[dt] == kInfDistance) continue;
    const double leg = ctx.locator->DistV(endpoints.vt, pt, dt);
    if (leg == kInfDistance) continue;
    best = std::min(best, dist[dt] + leg);
  }
  return best;
}

}  // namespace indoor
