#include "core/query/knn_query.h"

#include "core/distance/query_scratch.h"
#include "core/query/query_cache.h"
#include "core/query/result_digest.h"
#include "util/metrics.h"
#include "util/query_log.h"

namespace indoor {
namespace {

/// Lines 12-19 of Algorithm 6 for one DPT side: nnSearch in the partition's
/// bucket anchored at door dj with the accumulated leg r2.
void SearchSide(const IndexFramework& index, PartitionId part, DoorId dj,
                double r2, BucketScratch* scratch, KnnCollector* collector) {
  if (part == kInvalidId) return;
  const GridBucket& bucket = index.objects().bucket(part);
  if (bucket.size() == 0) return;
  bucket.NnSearch(index.plan().partition(part),
                  index.plan().door(dj).Midpoint(), r2, collector, scratch);
}

}  // namespace

std::vector<Neighbor> KnnQuery(const IndexFramework& index, const Point& q,
                               size_t k, KnnQueryOptions options,
                               QueryScratch* scratch) {
  INDOOR_LATENCY_SPAN("knn", "query.knn.latency_ns");
  qlog::QueryLogScope qscope(qlog::RecordKind::kKnn, q.x, q.y, 0.0, 0.0, 0.0,
                             static_cast<uint32_t>(k), scratch != nullptr);
  const FloorPlan& plan = index.plan();
  const QueryCache* cache = index.query_cache();
  const auto host = CachedHostPartition(cache, index.locator(), q);
  if (!host.ok() || k == 0) return {};
  const PartitionId v = host.value();
  qscope.SetHost(v);
  scratch = &ResolveQueryScratch(scratch);
  const ScratchDecayGuard decay_guard(scratch);

  KnnCollector& collector = scratch->collector;
  collector.Reset(k);
  // Line 3: search the host partition directly.
  {
    INDOOR_TRACE_SPAN("host_search");
    index.objects().bucket(v).NnSearch(plan.partition(v), q, /*extra=*/0.0,
                                       &collector, &scratch->bucket);
  }

  const size_t n = plan.door_count();
  const DistanceMatrix& md2d = index.d2d_matrix();
  const DoorPartitionTable& dpt = index.dpt();

  // Lines 4-19: expand through every leaveable door of the host partition.
  // All q-to-door legs come from one batched geodesic solve rooted at q.
  const auto& src_doors = plan.LeaveDoors(v);
  auto& src_leg = scratch->src_leg;
  src_leg.resize(src_doors.size());
  CachedFieldLegs(cache, index.locator(), FieldKind::kLeaveFrom, v, q,
                  src_doors, &scratch->geo, src_leg.data());
  INDOOR_METRICS_ONLY(uint64_t md2d_rows = 0; uint64_t midx_rows = 0;
                      uint64_t entries = 0;)
  {
    INDOOR_TRACE_SPAN("door_expansion");
    for (size_t i = 0; i < src_doors.size(); ++i) {
      const DoorId di = src_doors[i];
      const double r1 = src_leg[i];
      if (r1 == kInfDistance) continue;
      const double* row = md2d.Row(di);
      INDOOR_METRICS_ONLY(++md2d_rows;)
      if (options.use_index_matrix) {
        const DoorId* order = index.index_matrix().Row(di);
        INDOOR_METRICS_ONLY(++midx_rows;)
        for (size_t j = 0; j < n; ++j) {
          const DoorId dj = order[j];
          INDOOR_METRICS_ONLY(++entries;)
          if (r1 + row[dj] > collector.Bound()) break;
          const double r2 = r1 + row[dj];
          SearchSide(index, dpt[dj].part1, dj, r2, &scratch->bucket,
                     &collector);
          SearchSide(index, dpt[dj].part2, dj, r2, &scratch->bucket,
                     &collector);
        }
      } else {
        INDOOR_METRICS_ONLY(entries += n;)
        for (DoorId dj = 0; dj < n; ++dj) {
          if (r1 + row[dj] > collector.Bound()) continue;
          const double r2 = r1 + row[dj];
          SearchSide(index, dpt[dj].part1, dj, r2, &scratch->bucket,
                     &collector);
          SearchSide(index, dpt[dj].part2, dj, r2, &scratch->bucket,
                     &collector);
        }
      }
    }
  }
  INDOOR_METRICS_ONLY(
      INDOOR_COUNTER_ADD("index.md2d.row_fetches", md2d_rows);
      INDOOR_COUNTER_ADD("index.midx.row_fetches", midx_rows);
      INDOOR_COUNTER_ADD("index.scan.entries", entries);
      FlushBucketStats(&scratch->bucket);)
  INDOOR_HISTOGRAM_RECORD("query.knn.results", collector.size());
  std::vector<Neighbor> sorted = collector.Sorted();
  if (qscope.active()) {
    qscope.SetResult(static_cast<uint32_t>(sorted.size()),
                     qdigest::KnnDigest(sorted));
  }
  return sorted;
}

}  // namespace indoor
