#include "core/query/knn_query.h"

namespace indoor {
namespace {

/// Lines 12-19 of Algorithm 6 for one DPT side: nnSearch in the partition's
/// bucket anchored at door dj with the accumulated leg r2.
void SearchSide(const IndexFramework& index, PartitionId part, DoorId dj,
                double r2, KnnCollector* collector) {
  if (part == kInvalidId) return;
  const GridBucket& bucket = index.objects().bucket(part);
  if (bucket.size() == 0) return;
  bucket.NnSearch(index.plan().partition(part),
                  index.plan().door(dj).Midpoint(), r2, collector);
}

}  // namespace

std::vector<Neighbor> KnnQuery(const IndexFramework& index, const Point& q,
                               size_t k, KnnQueryOptions options) {
  const FloorPlan& plan = index.plan();
  const auto host = index.locator().GetHostPartition(q);
  if (!host.ok() || k == 0) return {};
  const PartitionId v = host.value();

  KnnCollector collector(k);
  // Line 3: search the host partition directly.
  index.objects().bucket(v).NnSearch(plan.partition(v), q, /*extra=*/0.0,
                                     &collector);

  const size_t n = plan.door_count();
  const DistanceMatrix& md2d = index.d2d_matrix();
  const DoorPartitionTable& dpt = index.dpt();

  // Lines 4-19: expand through every leaveable door of the host partition.
  for (DoorId di : plan.LeaveDoors(v)) {
    const double r1 = index.locator().DistV(v, q, di);
    if (r1 == kInfDistance) continue;
    const double* row = md2d.Row(di);
    if (options.use_index_matrix) {
      const DoorId* order = index.index_matrix().Row(di);
      for (size_t j = 0; j < n; ++j) {
        const DoorId dj = order[j];
        if (r1 + row[dj] > collector.Bound()) break;
        const double r2 = r1 + row[dj];
        SearchSide(index, dpt[dj].part1, dj, r2, &collector);
        SearchSide(index, dpt[dj].part2, dj, r2, &collector);
      }
    } else {
      for (DoorId dj = 0; dj < n; ++dj) {
        if (r1 + row[dj] > collector.Bound()) continue;
        const double r2 = r1 + row[dj];
        SearchSide(index, dpt[dj].part1, dj, r2, &collector);
        SearchSide(index, dpt[dj].part2, dj, r2, &collector);
      }
    }
  }
  return collector.Sorted();
}

}  // namespace indoor
