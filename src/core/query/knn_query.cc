#include "core/query/knn_query.h"

#include "core/distance/query_scratch.h"

namespace indoor {
namespace {

/// Lines 12-19 of Algorithm 6 for one DPT side: nnSearch in the partition's
/// bucket anchored at door dj with the accumulated leg r2.
void SearchSide(const IndexFramework& index, PartitionId part, DoorId dj,
                double r2, BucketScratch* scratch, KnnCollector* collector) {
  if (part == kInvalidId) return;
  const GridBucket& bucket = index.objects().bucket(part);
  if (bucket.size() == 0) return;
  bucket.NnSearch(index.plan().partition(part),
                  index.plan().door(dj).Midpoint(), r2, collector, scratch);
}

}  // namespace

std::vector<Neighbor> KnnQuery(const IndexFramework& index, const Point& q,
                               size_t k, KnnQueryOptions options,
                               QueryScratch* scratch) {
  const FloorPlan& plan = index.plan();
  const auto host = index.locator().GetHostPartition(q);
  if (!host.ok() || k == 0) return {};
  const PartitionId v = host.value();
  if (scratch == nullptr) scratch = &TlsQueryScratch();

  KnnCollector& collector = scratch->collector;
  collector.Reset(k);
  // Line 3: search the host partition directly.
  index.objects().bucket(v).NnSearch(plan.partition(v), q, /*extra=*/0.0,
                                     &collector, &scratch->bucket);

  const size_t n = plan.door_count();
  const DistanceMatrix& md2d = index.d2d_matrix();
  const DoorPartitionTable& dpt = index.dpt();

  // Lines 4-19: expand through every leaveable door of the host partition.
  // All q-to-door legs come from one batched geodesic solve rooted at q.
  const auto& src_doors = plan.LeaveDoors(v);
  auto& src_leg = scratch->src_leg;
  src_leg.resize(src_doors.size());
  index.locator().DistVMany(v, q, src_doors, &scratch->geo, src_leg.data());
  for (size_t i = 0; i < src_doors.size(); ++i) {
    const DoorId di = src_doors[i];
    const double r1 = src_leg[i];
    if (r1 == kInfDistance) continue;
    const double* row = md2d.Row(di);
    if (options.use_index_matrix) {
      const DoorId* order = index.index_matrix().Row(di);
      for (size_t j = 0; j < n; ++j) {
        const DoorId dj = order[j];
        if (r1 + row[dj] > collector.Bound()) break;
        const double r2 = r1 + row[dj];
        SearchSide(index, dpt[dj].part1, dj, r2, &scratch->bucket,
                   &collector);
        SearchSide(index, dpt[dj].part2, dj, r2, &scratch->bucket,
                   &collector);
      }
    } else {
      for (DoorId dj = 0; dj < n; ++dj) {
        if (r1 + row[dj] > collector.Bound()) continue;
        const double r2 = r1 + row[dj];
        SearchSide(index, dpt[dj].part1, dj, r2, &scratch->bucket,
                   &collector);
        SearchSide(index, dpt[dj].part2, dj, r2, &scratch->bucket,
                   &collector);
      }
    }
  }
  return collector.Sorted();
}

}  // namespace indoor
