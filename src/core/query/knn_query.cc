#include "core/query/knn_query.h"

#include <algorithm>
#include <numeric>

#include "core/distance/d2d_runner.h"
#include "core/distance/query_scratch.h"
#include "core/query/query_cache.h"
#include "core/query/result_digest.h"
#include "util/metrics.h"
#include "util/query_log.h"
#include "util/simd.h"

namespace indoor {
namespace {

/// Lines 12-19 of Algorithm 6 for one DPT side: nnSearch in the partition's
/// bucket anchored at door dj with the accumulated leg r2. `deps`
/// (optional) accumulates the epoch dependency set of the query's cached
/// result; partitions are recorded even when empty (reaching one means its
/// population matters). Partitions that are NOT reached cannot affect the
/// result even if their population changes: they are pruned because every
/// door path to them is strictly longer than the collector bound, which
/// never rises, so any object there sits strictly beyond the final k-th
/// distance — it can neither enter the top-k nor displace a tie.
void SearchSide(const IndexFramework& index, PartitionId part, DoorId dj,
                double r2, BucketScratch* scratch, KnnCollector* collector,
                std::vector<PartitionId>* deps,
                std::vector<ResultGate>* gates) {
  if (part == kInvalidId) return;
  if (deps != nullptr) {
    deps->push_back(part);
    gates->push_back({part, dj, r2, 0.0});  // fdv unused for kNN gates
  }
  // Hotness telemetry (see range_query.cc): every reached partition is a
  // visit; object distance evaluations settle as the pair's second half.
  INDOOR_METRICS_ONLY(const uint64_t hot_before = scratch->objects_tested;
                      scratch->hot.emplace_back(part, 0);)
  const GridBucket& bucket = index.objects().bucket(part);
  if (bucket.size() == 0) return;
  bucket.NnSearch(index.plan().partition(part),
                  index.plan().door(dj).Midpoint(), r2, collector, scratch);
  INDOOR_METRICS_ONLY(scratch->hot.back().second =
                          static_cast<uint32_t>(scratch->objects_tested -
                                                hot_before);)
}

/// Spare neighbors cached beyond the requested k. A fresh solve collects
/// the top-(k + spares) so that repair can absorb cached neighbors moving
/// AWAY without losing the ability to serve an exact top-k: the spares
/// are the fill-ins a plain k-sized list would have to re-solve for. The
/// served result is always the leading k entries.
constexpr size_t kKnnRepairSpares = 4;

enum class KnnRepair : uint8_t {
  kUnchanged,  ///< no moved object affects the result; refresh epochs only
  kPatched,    ///< stale->neighbors now holds the exact fresh answer
  kResolve,    ///< the patch cannot be proven exact; re-solve fully
};

/// Patches a stale cached kNN result against the moved objects, or proves
/// it unchanged, or gives up.
///
/// For a moved object o the best offer a fresh search could make is
///   min(intra(q, o)                 if o is in the host partition,
///       intra(door_g, o) + budget_g over gates g of o's partition)
/// -- the same float expressions NnSearch offers, with the collector
/// keeping the running min per object. Partitions without gates were
/// pruned with every path leg at or beyond the cached k-th distance
/// (`bound`), so objects moving there cannot beat it; symmetrically an
/// offer below `bound` can only come through a gate the original search
/// evaluated, which makes `best` the object's exact fresh distance
/// whenever best < bound. The patch therefore: drops moved objects from
/// the cached list, re-merges every moved object whose best is below
/// bound, and keeps the k closest. That is the fresh top-k as long as the
/// merged list still has k members whose ordering is unambiguous --
/// KnnCollector keeps entries (distance, id)-sorted but resolves an exact
/// distance TIE at the admission boundary by offer order, which a patch
/// cannot reproduce, so any equality involving a merged distance falls
/// back to kResolve. Lists cached with fewer than k members (bound
/// = infinity) are not patched: the fresh search may then admit
/// unreachable objects at infinite offers, which the gate test cannot
/// distinguish.
KnnRepair RepairKnnResult(const IndexFramework& index, const Point& q,
                          size_t k, PartitionId host, StaleResult* stale,
                          GeodesicScratch* geo) {
  std::vector<Neighbor>& nbrs = stale->neighbors;
  const size_t cap = k + kKnnRepairSpares;
  // Invariant carried by every cached list of size >= k: entries are
  // (distance, id)-sorted with exact distances, and every object whose
  // current distance is below the last entry's distance is IN the list
  // (prefix-completeness). A fresh insert establishes it for the full
  // top-(k + spares); each patch below preserves it. Lists shorter than k
  // (tiny reachable populations) are re-solved instead.
  if (nbrs.size() < k) return KnnRepair::kResolve;
  const double bound = nbrs.back().distance;
  const FloorPlan& plan = index.plan();
  const ObjectStore& store = index.objects();

  // Exact fresh distances of the moved objects that can make the list.
  // An offer below `bound` can only come through a gate the original
  // search evaluated (a pruned door's whole path already exceeded its
  // bound, which never rises), so `best` is exact whenever best < bound;
  // movers at or beyond `bound` cannot crack the served top-k because the
  // list keeps at least k entries at or below `bound`.
  std::vector<Neighbor> merged;
  for (const ObjectId id : stale->changed) {
    const IndoorObject& o = store.object(id);
    double best = kInfDistance;
    if (o.partition == host) {
      const double d = plan.partition(host).IntraDistance(q, o.position, geo);
      if (d != kInfDistance) best = std::min(best, d);
    }
    for (const ResultGate& g : stale->gates) {
      if (g.part != o.partition) continue;
      const double d = plan.partition(g.part).IntraDistance(
          plan.door(g.door).Midpoint(), o.position, geo);
      if (d != kInfDistance) best = std::min(best, d + g.budget);
    }
    if (best < bound) merged.push_back({id, best});
  }

  // Retained cached neighbors: everyone who did not move. Their cached
  // distances stay exact -- a door the original search pruned offers at
  // or beyond the original bound, so it cannot improve anyone's min.
  bool removed = false;
  size_t w = 0;
  for (const Neighbor& nb : nbrs) {
    const bool moved =
        std::find(stale->changed.begin(), stale->changed.end(), nb.id) !=
        stale->changed.end();
    if (moved) {
      removed = true;  // its merged entry (if any) carries the new distance
    } else {
      nbrs[w++] = nb;
    }
  }
  nbrs.resize(w);
  if (!removed && merged.empty()) return KnnRepair::kUnchanged;

  // An exact distance TIE against a merged entry makes the order
  // offer-dependent (KnnCollector resolves boundary ties by offer order,
  // which a patch cannot reproduce) -- re-solve on any such collision.
  for (size_t i = 0; i < merged.size(); ++i) {
    for (const Neighbor& nb : nbrs) {
      if (merged[i].distance == nb.distance) return KnnRepair::kResolve;
    }
    for (size_t j = i + 1; j < merged.size(); ++j) {
      if (merged[j].distance == merged[i].distance) {
        return KnnRepair::kResolve;
      }
    }
  }

  // Merge preserving the collector's (distance, id) order; retained
  // entries already carry it and merged distances are tie-free.
  nbrs.insert(nbrs.end(), merged.begin(), merged.end());
  std::sort(nbrs.begin(), nbrs.end(),
            [](const Neighbor& a, const Neighbor& b) {
              return a.distance != b.distance ? a.distance < b.distance
                                              : a.id < b.id;
            });
  if (nbrs.size() > cap) {
    // Spilling over capacity mirrors collector displacement; a distance
    // tie across the cut would again be offer-order ambiguous.
    if (nbrs[cap].distance == nbrs[cap - 1].distance) {
      return KnnRepair::kResolve;
    }
    nbrs.resize(cap);
  }
  if (nbrs.size() < k) return KnnRepair::kResolve;  // spares exhausted
  return KnnRepair::kPatched;
}


/// Serves one kNN query from the approximate tier (approx_knn.h): SIMD
/// landmark lower bounds over every object, exact re-rank of the `k *
/// factor` bound-sorted candidates, early exit once the k-th exact
/// distance is at or below the next candidate's bound (exact modulo
/// boundary ties when the exit fires; approximate when the prefix runs
/// dry first). Returns false when the tier cannot serve a full answer —
/// landmark mismatch or fewer than k reachable candidates — and the
/// caller falls back to the exact path. Never consults or fills the
/// result cache: cached entries must stay exact.
bool ApproxKnnServe(const IndexFramework& index, const ApproxKnnIndex& approx,
                    const Point& q, PartitionId v, size_t k, size_t factor,
                    QueryScratch* scratch, std::vector<Neighbor>* out) {
  const LandmarkIndex* const lm = index.landmarks();
  if (lm == nullptr || lm->count() != approx.landmark_count()) return false;
  const size_t n_obj = approx.object_count();
  if (n_obj < k) return false;  // exact path owns tiny populations
  const FloorPlan& plan = index.plan();
  const QueryCache* cache = index.query_cache();
  const size_t L = lm->count();

  // Query-side landmark aggregates over the host partition's door legs
  // (both fields are the canonical cached solves the exact paths share):
  //   fq[l] = d(landmark_l, q) = min_j (fwd_row(enter_j)[l] + leg(q, j))
  //   bq[l] = d(q, landmark_l) = min_i (leg(q, i) + bwd_row(leave_i)[l])
  const std::vector<DoorId>& leave = plan.LeaveDoors(v);
  auto& src_leg = scratch->src_leg;
  src_leg.resize(leave.size());
  CachedFieldLegs(cache, index.locator(), FieldKind::kLeaveFrom, v, q, leave,
                  &scratch->geo, src_leg.data());
  const std::vector<DoorId>& enter = plan.EnterDoors(v);
  auto& dst_leg = scratch->dst_leg;
  dst_leg.resize(enter.size());
  CachedFieldLegs(cache, index.locator(), FieldKind::kEnterTo, v, q, enter,
                  &scratch->geo, dst_leg.data());

  double fq[LandmarkIndex::kMaxCount];
  double bq[LandmarkIndex::kMaxCount];
  for (size_t l = 0; l < L; ++l) fq[l] = bq[l] = kInfDistance;
  for (size_t j = 0; j < enter.size(); ++j) {
    if (dst_leg[j] == kInfDistance) continue;
    const double* frow = lm->ForwardRow(enter[j]);
    for (size_t l = 0; l < L; ++l) {
      if (frow[l] == kInfDistance) continue;
      fq[l] = std::min(fq[l], frow[l] + dst_leg[j]);
    }
  }
  for (size_t i = 0; i < leave.size(); ++i) {
    if (src_leg[i] == kInfDistance) continue;
    const double* brow = lm->BackwardRow(leave[i]);
    for (size_t l = 0; l < L; ++l) {
      if (brow[l] == kInfDistance) continue;
      bq[l] = std::min(bq[l], src_leg[i] + brow[l]);
    }
  }

  // Triangle-inequality lower bound per object, one landmark-major batch
  // kernel call per landmark.
  auto& acc = scratch->approx_bound;
  acc.assign(n_obj, 0.0);
  {
    INDOOR_TRACE_SPAN("approx_bounds");
    for (size_t l = 0; l < L; ++l) {
      // A landmark unreachable from/to the query contributes no finite
      // term; skipping it saves a whole row scan.
      if (fq[l] == kInfDistance && bq[l] == kInfDistance) continue;
      simd::AltBatchBoundMax(approx.FwdRow(l), approx.BwdRow(l), fq[l], bq[l],
                             acc.data(), n_obj);
    }
  }

  // Candidate prefix: the `want` smallest bounds, ascending (ties by id).
  auto& order = scratch->approx_order;
  order.resize(n_obj);
  std::iota(order.begin(), order.end(), ObjectId{0});
  const size_t want = std::min(n_obj, k * std::max<size_t>(factor, 1));
  const auto by_bound = [&acc](ObjectId a, ObjectId b) {
    return acc[a] != acc[b] ? acc[a] < acc[b] : a < b;
  };
  if (want < n_obj) {
    std::nth_element(order.begin(), order.begin() + want, order.end(),
                     by_bound);
  }
  std::sort(order.begin(), order.begin() + want, by_bound);

  // Exact re-rank. The q -> enter-door budget min_i (src_leg[i] +
  // Md2d[leave_i][dj]) is the same float expression the exact scan offers
  // as r2 (min and + commute monotonically, so taking the min first is
  // bitwise identical); memoized per door across candidates.
  const DistanceMatrix& md2d = index.d2d_matrix();
  auto& dq = scratch->approx_dq;
  dq.assign(plan.door_count(), -1.0);
  const auto door_budget = [&](DoorId dj) {
    double b = dq[dj];
    if (b != -1.0) return b;
    b = kInfDistance;
    for (size_t i = 0; i < leave.size(); ++i) {
      if (src_leg[i] == kInfDistance) continue;
      const double r2 = src_leg[i] + md2d.Row(leave[i])[dj];
      if (r2 < b) b = r2;
    }
    dq[dj] = b;
    return b;
  };

  const ObjectStore& store = index.objects();
  KnnCollector& collector = scratch->collector;
  collector.Reset(k);
  INDOOR_METRICS_ONLY(uint64_t scanned = 0;)
  {
    INDOOR_TRACE_SPAN("approx_rerank");
    for (size_t c = 0; c < want; ++c) {
      const ObjectId o = order[c];
      // Bound() is the k-th exact distance once full (infinite before);
      // every remaining candidate's exact distance is at least acc[o]
      // (ascending prefix, nth_element partition), so nothing can improve
      // the collection: the answer is exact from here.
      if (collector.Bound() <= acc[o]) break;
      const IndoorObject& obj = store.object(o);
      double d = kInfDistance;
      if (obj.partition == v) {
        const double h =
            plan.partition(v).IntraDistance(q, obj.position, &scratch->geo);
        if (h < d) d = h;
      }
      const std::vector<DoorId>& doors = plan.EnterDoors(obj.partition);
      const std::span<const double> legs = approx.Legs(o);
      for (size_t j = 0; j < doors.size(); ++j) {
        if (legs[j] == kInfDistance) continue;
        const double b = door_budget(doors[j]);
        if (b == kInfDistance) continue;
        const double cand = legs[j] + b;
        if (cand < d) d = cand;
      }
      INDOOR_METRICS_ONLY(++scanned;)
      if (d == kInfDistance) continue;
      collector.Offer(o, d);
    }
  }
  INDOOR_METRICS_ONLY(INDOOR_COUNTER_ADD("knn.approx.candidates", scanned);)
  // Under-filled: fewer than k reachable candidates in the prefix. The
  // exact path's handling of sparse/unreachable populations (including
  // its infinite-distance admissions) is authoritative; fall back.
  if (collector.size() < k) return false;
  *out = collector.Sorted();
  return true;
}

}  // namespace

std::vector<Neighbor> KnnQuery(const IndexFramework& index, const Point& q,
                               size_t k, KnnQueryOptions options,
                               QueryScratch* scratch) {
  INDOOR_LATENCY_SPAN("knn", "query.knn.latency_ns");
  qlog::QueryLogScope qscope(qlog::RecordKind::kKnn, q.x, q.y, 0.0, 0.0, 0.0,
                             static_cast<uint32_t>(k), scratch != nullptr);
  const FloorPlan& plan = index.plan();
  const QueryCache* cache = index.query_cache();
  const auto host = CachedHostPartition(cache, index.locator(), q);
  if (!host.ok() || k == 0) return {};
  const PartitionId v = host.value();
  qscope.SetHost(v);
  // Opt-in approximate tier: bypasses the result cache entirely (cached
  // entries must stay exact) and never runs for hierarchy frameworks,
  // stale embeddings, or when it cannot prove a full k-sized answer.
  if (options.use_approx && index.has_flat_matrix()) {
    if (const ApproxKnnIndex* const approx = index.approx_knn()) {
      QueryScratch& ascratch = ResolveQueryScratch(scratch);
      const ScratchDecayGuard approx_guard(&ascratch);
      const size_t factor = options.approx_candidate_factor != 0
                                ? options.approx_candidate_factor
                                : index.options().approx_candidate_factor;
      std::vector<Neighbor> result;
      if (approx->FreshFor(index.objects()) &&
          ApproxKnnServe(index, *approx, q, v, k, factor, &ascratch,
                         &result)) {
        INDOOR_COUNTER_INC("knn.approx.served");
        INDOOR_HISTOGRAM_RECORD("query.knn.results", result.size());
        if (qscope.active()) {
          qscope.SetResult(static_cast<uint32_t>(result.size()),
                           qdigest::KnnDigest(result));
        }
        return result;
      }
      INDOOR_COUNTER_INC("knn.approx.exact_fallback");
    }
  }
  // Result kinds keep cached entries of the three door-expansion engines
  // (Midx scan / full-row scan / hierarchy) apart; the repair machinery is
  // engine-independent (gates + intra-partition geometry only).
  const uint8_t result_kind =
      !index.has_flat_matrix() ? 5 : (options.use_index_matrix ? 1 : 3);
  if (cache != nullptr) {
    std::vector<Neighbor> cached;
    StaleResult& stale = TlsStaleResult();
    switch (cache->ProbeKnnResult(q, k, result_kind, &cached, &stale)) {
      case ResultProbe::kHit:
        // The stored list carries up to kKnnRepairSpares extras; serve k.
        if (cached.size() > k) cached.resize(k);
        INDOOR_HISTOGRAM_RECORD("query.knn.results", cached.size());
        if (qscope.active()) {
          qscope.SetResult(static_cast<uint32_t>(cached.size()),
                           qdigest::KnnDigest(cached));
        }
        return cached;
      case ResultProbe::kStale: {
        // Patch (or revalidate) instead of re-solving: only the moved
        // objects can enter or leave the cached top-k.
        QueryScratch& repair_scratch = ResolveQueryScratch(scratch);
        if (RepairKnnResult(index, q, k, v, &stale, &repair_scratch.geo) !=
            KnnRepair::kResolve) {
          // Persist the full (spare-carrying) patched list, serve k.
          cache->CommitRepairedKnn(q, k, result_kind, stale.neighbors);
          if (stale.neighbors.size() > k) stale.neighbors.resize(k);
          INDOOR_HISTOGRAM_RECORD("query.knn.results",
                                  stale.neighbors.size());
          if (qscope.active()) {
            qscope.SetResult(static_cast<uint32_t>(stale.neighbors.size()),
                             qdigest::KnnDigest(stale.neighbors));
          }
          return std::move(stale.neighbors);
        }
        cache->CountEpochReject();
        break;  // fall through to the full search
      }
      case ResultProbe::kMiss:
        break;
    }
  }
  scratch = &ResolveQueryScratch(scratch);
  const ScratchDecayGuard decay_guard(scratch);
  std::vector<PartitionId>* deps = nullptr;
  std::vector<ResultGate>* gates = nullptr;
  if (cache != nullptr) {
    deps = &scratch->result_deps;
    deps->clear();
    deps->push_back(v);  // the host bucket is always examined
    gates = &TlsStaleResult().gates;
    gates->clear();
  }

  KnnCollector& collector = scratch->collector;
  // With caching on, solve for k + spares so the cached list can absorb
  // future removals in repair; the served answer is the leading k either
  // way (a wider collector only ever visits a superset of doors, and
  // pruned doors offer at or beyond the running bound, so the top-k
  // prefix is unaffected).
  collector.Reset(cache != nullptr ? k + kKnnRepairSpares : k);
  // Line 3: search the host partition directly.
  INDOOR_METRICS_ONLY(
      const uint64_t hot_before = scratch->bucket.objects_tested;
      scratch->bucket.hot.emplace_back(v, 0);)
  {
    INDOOR_TRACE_SPAN("host_search");
    index.objects().bucket(v).NnSearch(plan.partition(v), q, /*extra=*/0.0,
                                       &collector, &scratch->bucket);
  }
  INDOOR_METRICS_ONLY(scratch->bucket.hot.back().second =
                          static_cast<uint32_t>(
                              scratch->bucket.objects_tested - hot_before);)

  const size_t n = plan.door_count();
  const DoorPartitionTable& dpt = index.dpt();

  // Lines 4-19: expand through every leaveable door of the host partition.
  // All q-to-door legs come from one batched geodesic solve rooted at q.
  const auto& src_doors = plan.LeaveDoors(v);
  auto& src_leg = scratch->src_leg;
  src_leg.resize(src_doors.size());
  CachedFieldLegs(cache, index.locator(), FieldKind::kLeaveFrom, v, q,
                  src_doors, &scratch->geo, src_leg.data());
  if (!index.has_flat_matrix()) {
    // Hierarchy engine. kNN is the delicate case: the collector resolves
    // exact-distance ties at its admission boundary by OFFER ORDER, so
    // the hierarchy must reproduce the flat Midx scan's offer sequence
    // exactly, not just its offer set. It can: Midx rows are sorted by
    // (distance, id) — precisely the settle order of the door Dijkstra
    // (ties co-reside in the frontier because edge weights are positive,
    // and both frontiers pop lexicographically) — so a bounded Dijkstra
    // that checks the flat break condition BEFORE each offer emits the
    // identical sequence. The push prune (offer above the current bound,
    // which never rises) suppresses only offers the collector would
    // reject; when it fires, the flat scan — whose offers from that point
    // on are all at least as large — breaks at the first suppressed door,
    // so the run's stop check fires before any post-prune offer diverges.
    // The inf tail: when every reachable door settles unpruned, the flat
    // scan reaches its unreachable entries (id-ordered by the stable
    // sort) and offers r1 + inf until the break; a prune implies a finite
    // bound, which makes the flat tail break immediately — hence the tail
    // replay below runs exactly when no stop and no prune occurred.
    // (The cell blocks themselves stay unused here: an adaptive collector
    // bound cannot be served from a static block without re-deriving the
    // offer order, so kNN always takes the bounded-run path.)
    INDOOR_METRICS_ONLY(uint64_t runs = 0;)
    INDOOR_TRACE_SPAN("door_expansion");
    for (size_t i = 0; i < src_doors.size(); ++i) {
      const DoorId di = src_doors[i];
      const double r1 = src_leg[i];
      if (r1 == kInfDistance) continue;
      INDOOR_METRICS_ONLY(++runs;)
      bool stopped = false;
      uint64_t prunes = 0;
      RunDoorDijkstra(
          index.graph(), di, &scratch->door, index.queue_kind(), nullptr,
          [&](DoorId dj, double d) {
            if (r1 + d > collector.Bound()) {
              stopped = true;
              return false;
            }
            const double r2 = r1 + d;
            SearchSide(index, dpt[dj].part1, dj, r2, &scratch->bucket,
                       &collector, deps, gates);
            SearchSide(index, dpt[dj].part2, dj, r2, &scratch->bucket,
                       &collector, deps, gates);
            return true;
          },
          [&](double cand) {
            if (r1 + cand > collector.Bound()) {
              ++prunes;
              return false;
            }
            return true;
          });
      if (stopped || prunes != 0) continue;
      // Unreachable-door tail of the flat scan, in ascending door id.
      const std::vector<char>& visited = scratch->door.visited;
      for (DoorId dj = 0; dj < n; ++dj) {
        if (visited[dj]) continue;
        if (r1 + kInfDistance > collector.Bound()) break;
        SearchSide(index, dpt[dj].part1, dj, kInfDistance, &scratch->bucket,
                   &collector, deps, gates);
        SearchSide(index, dpt[dj].part2, dj, kInfDistance, &scratch->bucket,
                   &collector, deps, gates);
      }
    }
    INDOOR_METRICS_ONLY(
        INDOOR_COUNTER_ADD("index.hier.knn.runs", runs);
        FlushBucketStats(&scratch->bucket);
        index.hotness().FlushVisits(&scratch->bucket.hot);)
    std::vector<Neighbor> sorted = collector.Sorted();
    if (cache != nullptr) {
      cache->InsertKnnResult(q, k, result_kind, *deps, *gates, sorted);
    }
    if (sorted.size() > k) sorted.resize(k);
    INDOOR_HISTOGRAM_RECORD("query.knn.results", sorted.size());
    if (qscope.active()) {
      qscope.SetResult(static_cast<uint32_t>(sorted.size()),
                       qdigest::KnnDigest(sorted));
    }
    return sorted;
  }
  const DistanceMatrix& md2d = index.d2d_matrix();
  INDOOR_METRICS_ONLY(uint64_t md2d_rows = 0; uint64_t midx_rows = 0;
                      uint64_t entries = 0;)
  {
    INDOOR_TRACE_SPAN("door_expansion");
    for (size_t i = 0; i < src_doors.size(); ++i) {
      const DoorId di = src_doors[i];
      const double r1 = src_leg[i];
      if (r1 == kInfDistance) continue;
      const double* row = md2d.Row(di);
      INDOOR_METRICS_ONLY(++md2d_rows;)
      if (options.use_index_matrix) {
        const DoorId* order = index.index_matrix().Row(di);
        INDOOR_METRICS_ONLY(++midx_rows;)
        for (size_t j = 0; j < n; ++j) {
          const DoorId dj = order[j];
          INDOOR_METRICS_ONLY(++entries;)
          if (r1 + row[dj] > collector.Bound()) break;
          const double r2 = r1 + row[dj];
          SearchSide(index, dpt[dj].part1, dj, r2, &scratch->bucket,
                     &collector, deps, gates);
          SearchSide(index, dpt[dj].part2, dj, r2, &scratch->bucket,
                     &collector, deps, gates);
        }
      } else {
        // The landmark lower bound (never above the exact row value) skips
        // entries the bound comparison would reject anyway, saving the row
        // read — identical offers reach the collector either way.
        const LandmarkIndex* const lm = index.landmarks();
        uint64_t lm_prunes = 0;
        INDOOR_METRICS_ONLY(entries += n;)
        for (DoorId dj = 0; dj < n; ++dj) {
          if (lm != nullptr && r1 + lm->LowerBound(di, dj) > collector.Bound()) {
            ++lm_prunes;
            continue;
          }
          if (r1 + row[dj] > collector.Bound()) continue;
          const double r2 = r1 + row[dj];
          SearchSide(index, dpt[dj].part1, dj, r2, &scratch->bucket,
                     &collector, deps, gates);
          SearchSide(index, dpt[dj].part2, dj, r2, &scratch->bucket,
                     &collector, deps, gates);
        }
        if (lm_prunes != 0) {
          INDOOR_COUNTER_ADD("distance.dijkstra.prunes.landmark", lm_prunes);
        }
      }
    }
  }
  INDOOR_METRICS_ONLY(
      INDOOR_COUNTER_ADD("index.md2d.row_fetches", md2d_rows);
      INDOOR_COUNTER_ADD("index.midx.row_fetches", midx_rows);
      INDOOR_COUNTER_ADD("index.scan.entries", entries);
      FlushBucketStats(&scratch->bucket);
      index.hotness().FlushVisits(&scratch->bucket.hot);)
  std::vector<Neighbor> sorted = collector.Sorted();
  if (cache != nullptr) {
    cache->InsertKnnResult(q, k, result_kind, *deps, *gates, sorted);
  }
  if (sorted.size() > k) sorted.resize(k);
  INDOOR_HISTOGRAM_RECORD("query.knn.results", sorted.size());
  if (qscope.active()) {
    qscope.SetResult(static_cast<uint32_t>(sorted.size()),
                     qdigest::KnnDigest(sorted));
  }
  return sorted;
}

}  // namespace indoor
