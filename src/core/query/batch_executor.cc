#include "core/query/batch_executor.h"

#include <algorithm>
#include <atomic>
#include <cstdint>

#include "core/distance/matrix_distance.h"
#include "core/query/knn_query.h"
#include "core/query/query_cache.h"
#include "core/query/range_query.h"
#include "util/metrics.h"

namespace indoor {
namespace {

/// Sort/grouping record: one per request, ordered by (host, position,
/// original index) — a strict weak order with a deterministic total
/// tie-break, so the grouping is reproducible run to run.
struct BatchItem {
  PartitionId host;
  double x, y;
  uint32_t index;

  bool operator<(const BatchItem& other) const {
    if (host != other.host) return host < other.host;
    if (x != other.x) return x < other.x;
    if (y != other.y) return y < other.y;
    return index < other.index;
  }
};

}  // namespace

BatchExecutor::BatchExecutor(const IndexFramework& index, unsigned threads)
    : index_(&index),
      pool_(ResolveThreadCount(threads)),
      scratches_(pool_.thread_count()) {}

void BatchExecutor::Execute(const QueryRequest& request, PartitionId host,
                            QueryScratch* scratch,
                            QueryResult* result) const {
  switch (request.kind) {
    case QueryRequest::Kind::kDistance: {
      if (host == kInvalidId) return;  // source not indoors
      const auto target = CachedHostPartition(
          index_->query_cache(), index_->locator(), request.b);
      if (!target.ok()) return;
      result->distance = Pt2PtDistanceMatrix(
          index_->plan(), index_->d2d_matrix(), host, request.a,
          target.value(), request.b, scratch, index_->query_cache());
      break;
    }
    case QueryRequest::Kind::kRange:
      result->ids = RangeQuery(*index_, request.a, request.radius, {},
                               scratch);
      break;
    case QueryRequest::Kind::kKnn:
      result->neighbors = KnnQuery(*index_, request.a, request.k, {},
                                   scratch);
      break;
  }
}

std::vector<QueryResult> BatchExecutor::Run(
    std::span<const QueryRequest> requests, const BatchOptions& options) {
  INDOOR_LATENCY_SPAN("batch", "batch.latency_ns");
  std::vector<QueryResult> results(requests.size());
  if (requests.empty()) return results;

  // Host resolution up front: one (cached) locator probe per request,
  // reused both for grouping and as the pt2pt source hint.
  std::vector<BatchItem> order;
  order.reserve(requests.size());
  for (uint32_t i = 0; i < requests.size(); ++i) {
    const auto host = CachedHostPartition(index_->query_cache(),
                                          index_->locator(), requests[i].a);
    order.push_back(BatchItem{host.ok() ? host.value() : kInvalidId,
                              requests[i].a.x, requests[i].a.y, i});
  }
  if (options.group_by_partition) {
    std::sort(order.begin(), order.end());
  }

  // Contiguous same-host runs become the work units fanned across the
  // pool; workers claim groups from an atomic cursor.
  std::vector<std::pair<uint32_t, uint32_t>> groups;
  for (uint32_t begin = 0; begin < order.size();) {
    uint32_t end = begin + 1;
    while (end < order.size() && order[end].host == order[begin].host) ++end;
    groups.emplace_back(begin, end);
    INDOOR_HISTOGRAM_RECORD("batch.group_size", end - begin);
    begin = end;
  }

  std::atomic<uint32_t> cursor{0};
  for (unsigned t = 0; t < pool_.thread_count(); ++t) {
    pool_.Submit([&, t] {
      QueryScratch& scratch = scratches_[t];
      for (uint32_t g = cursor.fetch_add(1, std::memory_order_relaxed);
           g < groups.size();
           g = cursor.fetch_add(1, std::memory_order_relaxed)) {
        for (uint32_t i = groups[g].first; i < groups[g].second; ++i) {
          const BatchItem& item = order[i];
          Execute(requests[item.index], item.host, &scratch,
                  &results[item.index]);
        }
      }
    });
  }
  pool_.Wait();

  INDOOR_COUNTER_INC("batch.runs");
  INDOOR_COUNTER_ADD("batch.requests", requests.size());
  INDOOR_HISTOGRAM_RECORD("batch.groups", groups.size());
  return results;
}

std::vector<QueryResult> RunBatch(const IndexFramework& index,
                                  std::span<const QueryRequest> requests,
                                  const BatchOptions& options) {
  BatchExecutor executor(index, options.threads);
  return executor.Run(requests, options);
}

}  // namespace indoor
