#include "core/query/batch_executor.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

#include "core/distance/hierarchy_distance.h"
#include "core/distance/matrix_distance.h"
#include "core/query/knn_query.h"
#include "core/query/query_cache.h"
#include "core/query/range_query.h"
#include "core/query/result_digest.h"
#include "util/metrics.h"
#include "util/query_log.h"
#include "util/trace_export.h"

namespace indoor {
namespace {

/// Sort/grouping record: one per request, ordered by (host, position,
/// original index) — a strict weak order with a deterministic total
/// tie-break, so the grouping is reproducible run to run.
struct BatchItem {
  PartitionId host;
  double x, y;
  uint32_t index;

  bool operator<(const BatchItem& other) const {
    if (host != other.host) return host < other.host;
    if (x != other.x) return x < other.x;
    if (y != other.y) return y < other.y;
    return index < other.index;
  }
};

#ifdef INDOOR_METRICS_ENABLED
/// Monotonic nonzero batch ids: every observed Run() gets one, so a
/// capture's records group back into their original batches at replay.
uint64_t NextBatchId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}
#endif

}  // namespace

BatchExecutor::BatchExecutor(const IndexFramework& index, unsigned threads)
    : index_(&index),
      pool_(ResolveThreadCount(threads)),
      scratches_(pool_.thread_count()) {}

void BatchExecutor::Execute(const QueryRequest& request, PartitionId host,
                            QueryScratch* scratch,
                            QueryResult* result) const {
  switch (request.kind) {
    case QueryRequest::Kind::kDistance: {
      if (host == kInvalidId) return;  // source not indoors
      const auto target = CachedHostPartition(
          index_->query_cache(), index_->locator(), request.b);
      if (!target.ok()) return;
      if (!index_->has_flat_matrix()) {
        result->distance = Pt2PtDistanceHierarchy(
            index_->plan(), index_->graph(), index_->hierarchy_index(), host,
            request.a, target.value(), request.b, scratch,
            index_->query_cache(), index_->queue_kind());
      } else {
        result->distance = Pt2PtDistanceMatrix(
            index_->plan(), index_->d2d_matrix(), host, request.a,
            target.value(), request.b, scratch, index_->query_cache());
      }
      break;
    }
    case QueryRequest::Kind::kRange:
      result->ids = RangeQuery(*index_, request.a, request.radius, {},
                               scratch);
      break;
    case QueryRequest::Kind::kKnn:
      result->neighbors = KnnQuery(*index_, request.a, request.k, {},
                                   scratch);
      break;
  }
}

#ifdef INDOOR_METRICS_ENABLED
void BatchExecutor::ExecuteObserved(const QueryRequest& request,
                                    PartitionId host, QueryScratch* scratch,
                                    QueryResult* result, uint64_t batch_id,
                                    unsigned worker,
                                    bool collect_trace) const {
  // The batch-level scope owns the record; the per-kind scopes inside
  // Execute find an active scope on this thread and stay dormant.
  qlog::QueryLogScope scope(
      static_cast<qlog::RecordKind>(static_cast<uint8_t>(request.kind)),
      request.a.x, request.a.y, request.b.x, request.b.y, request.radius,
      static_cast<uint32_t>(request.k), /*explicit_scratch=*/true);
  scope.SetBatch(batch_id, static_cast<uint16_t>(worker));
  std::optional<metrics::QueryTrace> trace;
  if (collect_trace) trace.emplace();
  Execute(request, host, scratch, result);
  if (scope.active()) {
    scope.SetHost(host);
    scope.SetResult(qdigest::DigestCount(request, *result),
                    qdigest::DigestValue(request, *result));
  }
  const uint64_t seq = scope.seq();
  const uint64_t latency_ns = scope.Finish();
  if (collect_trace) {
    const uint64_t slow_ns = qlog::QueryLog::Global().slow_threshold_ns();
    trace::TraceEventCollector::Global().Offer(
        *trace, worker, "worker " + std::to_string(worker), seq,
        slow_ns > 0 && latency_ns >= slow_ns);
  }
}
#endif  // INDOOR_METRICS_ENABLED

std::vector<QueryResult> BatchExecutor::Run(
    std::span<const QueryRequest> requests, const BatchOptions& options) {
  INDOOR_LATENCY_SPAN("batch", "batch.latency_ns");
  std::vector<QueryResult> results(requests.size());
  if (requests.empty()) return results;

  // Host resolution up front: one (cached) locator probe per request,
  // reused both for grouping and as the pt2pt source hint.
  std::vector<BatchItem> order;
  order.reserve(requests.size());
  for (uint32_t i = 0; i < requests.size(); ++i) {
    const auto host = CachedHostPartition(index_->query_cache(),
                                          index_->locator(), requests[i].a);
    order.push_back(BatchItem{host.ok() ? host.value() : kInvalidId,
                              requests[i].a.x, requests[i].a.y, i});
  }
  if (options.group_by_partition) {
    std::sort(order.begin(), order.end());
  }

  // Contiguous same-host runs become the work units fanned across the
  // pool; workers claim groups from an atomic cursor.
  std::vector<std::pair<uint32_t, uint32_t>> groups;
  for (uint32_t begin = 0; begin < order.size();) {
    uint32_t end = begin + 1;
    while (end < order.size() && order[end].host == order[begin].host) ++end;
    groups.emplace_back(begin, end);
    INDOOR_HISTOGRAM_RECORD("batch.group_size", end - begin);
    begin = end;
  }

  std::atomic<uint32_t> cursor{0};
#ifdef INDOOR_METRICS_ENABLED
  // Observability is decided once per batch: when neither the query log
  // nor the trace collector is armed, the worker loop below is the
  // uninstrumented one.
  const bool trace_on = trace::TraceEventCollector::Global().armed();
  const bool observed = qlog::internal::Armed() || trace_on;
  const uint64_t batch_id = observed ? NextBatchId() : 0;
#endif
  for (unsigned t = 0; t < pool_.thread_count(); ++t) {
    pool_.Submit([&, t] {
      QueryScratch& scratch = scratches_[t];
      for (uint32_t g = cursor.fetch_add(1, std::memory_order_relaxed);
           g < groups.size();
           g = cursor.fetch_add(1, std::memory_order_relaxed)) {
        for (uint32_t i = groups[g].first; i < groups[g].second; ++i) {
          const BatchItem& item = order[i];
#ifdef INDOOR_METRICS_ENABLED
          if (observed) {
            ExecuteObserved(requests[item.index], item.host, &scratch,
                            &results[item.index], batch_id, t, trace_on);
            continue;
          }
#endif
          Execute(requests[item.index], item.host, &scratch,
                  &results[item.index]);
        }
      }
    });
  }
  pool_.Wait();

  INDOOR_COUNTER_INC("batch.runs");
  INDOOR_COUNTER_ADD("batch.requests", requests.size());
  INDOOR_HISTOGRAM_RECORD("batch.groups", groups.size());
  return results;
}

std::vector<QueryResult> RunBatch(const IndexFramework& index,
                                  std::span<const QueryRequest> requests,
                                  const BatchOptions& options) {
  BatchExecutor executor(index, options.threads);
  return executor.Run(requests, options);
}

Status ApplyMoveBatch(IndexFramework& index, std::span<const MoveOp> moves) {
  if (moves.empty()) return Status::OK();
  size_t applied = 0;
#ifdef INDOOR_METRICS_ENABLED
  const bool observed = qlog::internal::Armed();
  const auto t0 = std::chrono::steady_clock::now();
  const Status status = index.objects().ApplyMoves(moves, &applied);
  // Re-embed the approximate-kNN tier against the moved population (no-op
  // when the tier is off); still under the batch's writer barrier, so
  // queries never observe a half-refreshed store.
  index.RefreshApproxKnn();
  if (observed) {
    // One record per attempted op: the applied prefix plus, on failure,
    // the op that was rejected (result_count 0) — ops never attempted are
    // not recorded, matching the state the batch actually produced.
    const size_t attempted =
        status.ok() ? applied : std::min(applied + 1, moves.size());
    const uint64_t batch_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    const uint64_t per_op_ns =
        attempted > 0 ? batch_ns / attempted : batch_ns;
    qlog::QueryLog& log = qlog::QueryLog::Global();
    const uint64_t batch_id = NextBatchId();
    for (size_t i = 0; i < attempted; ++i) {
      const MoveOp& op = moves[i];
      const bool ok = i < applied;
      qlog::QueryLogRecord record;
      record.seq = log.NextSeq();
      record.batch_id = batch_id;
      record.start_us = log.SessionMicros();
      record.latency_ns = per_op_ns;
      record.ax = op.position.x;
      record.ay = op.position.y;
      record.k = op.id;
      record.host = op.partition;
      record.result_count = ok ? 1u : 0u;
      record.result_value =
          ok ? qdigest::MoveDigest(op.id, op.partition, op.position.x,
                                   op.position.y)
             : 0.0;
      record.kind = static_cast<uint8_t>(qlog::RecordKind::kMove);
      record.flags = qlog::kFlagMoveBatch;
      log.Submit(record);
    }
  }
  return status;
#else
  const Status status = index.objects().ApplyMoves(moves, &applied);
  index.RefreshApproxKnn();
  return status;
#endif
}

}  // namespace indoor
