#include "core/query/distance_join.h"

#include <algorithm>

#include "core/distance/matrix_distance.h"

namespace indoor {
namespace {

/// Door-level lower bound between two partitions (0 when P == Q).
double PartitionLowerBound(const IndexFramework& index, PartitionId p,
                           PartitionId q) {
  if (p == q) return 0.0;
  const FloorPlan& plan = index.plan();
  const DistanceMatrix& md2d = index.d2d_matrix();
  double lb = kInfDistance;
  for (DoorId ds : plan.LeaveDoors(p)) {
    for (DoorId dt : plan.EnterDoors(q)) {
      lb = std::min(lb, md2d.At(ds, dt));
    }
  }
  return lb;
}

}  // namespace

double ObjectPairDistance(const IndexFramework& index, const IndoorObject& a,
                          const IndoorObject& b) {
  const FloorPlan& plan = index.plan();
  const DistanceMatrix& md2d = index.d2d_matrix();
  return std::min(Pt2PtDistanceMatrix(plan, md2d, a.partition, a.position,
                                      b.partition, b.position),
                  Pt2PtDistanceMatrix(plan, md2d, b.partition, b.position,
                                      a.partition, a.position));
}

std::vector<JoinPair> DistanceJoin(const IndexFramework& index, double r) {
  std::vector<JoinPair> result;
  if (r < 0) return result;
  const FloorPlan& plan = index.plan();
  const ObjectStore& store = index.objects();

  // Group objects by partition.
  std::vector<std::vector<ObjectId>> by_partition(plan.partition_count());
  for (const IndoorObject& obj : store.objects()) {
    by_partition[obj.partition].push_back(obj.id);
  }
  std::vector<PartitionId> occupied;
  for (PartitionId v = 0; v < plan.partition_count(); ++v) {
    if (!by_partition[v].empty()) occupied.push_back(v);
  }

  // Partition-pair loop with the door-level lower bound as the filter
  // step; the refinement computes exact symmetric distances per object
  // pair.
  for (size_t i = 0; i < occupied.size(); ++i) {
    for (size_t j = i; j < occupied.size(); ++j) {
      const PartitionId p = occupied[i];
      const PartitionId q = occupied[j];
      // Symmetric bound: either direction may realize the minimum.
      const double lb = std::min(PartitionLowerBound(index, p, q),
                                 PartitionLowerBound(index, q, p));
      if (lb > r) continue;
      const auto& objs_p = by_partition[p];
      const auto& objs_q = by_partition[q];
      for (size_t ai = 0; ai < objs_p.size(); ++ai) {
        const IndoorObject& a = store.object(objs_p[ai]);
        const size_t b_begin = (p == q) ? ai + 1 : 0;
        for (size_t bi = b_begin; bi < objs_q.size(); ++bi) {
          const IndoorObject& b = store.object(objs_q[bi]);
          const double d = ObjectPairDistance(index, a, b);
          if (d <= r) {
            JoinPair pair{std::min(a.id, b.id), std::max(a.id, b.id), d};
            result.push_back(pair);
          }
        }
      }
    }
  }
  std::sort(result.begin(), result.end(),
            [](const JoinPair& x, const JoinPair& y) {
              return x.a < y.a || (x.a == y.a && x.b < y.b);
            });
  return result;
}

}  // namespace indoor
