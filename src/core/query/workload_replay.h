// Workload replay: re-executes a binary query-log capture
// (util/query_log.h) against an index and verifies that every query
// reproduces its captured result digest bit for bit.
//
// A capture is a flat list of QueryLogRecords carrying the full request
// geometry (kind, positions, radius/k), the original batch id, and a
// result digest (core/query/result_digest.h). Replay sorts the records
// back into arrival order, regroups consecutive records of one batch id
// into one BatchExecutor run (preserving the captured batch boundaries),
// executes the batches in capture order, and recomputes each digest from
// the replayed result. Move batches (kMove records, captured by
// ApplyMoveBatch) are re-applied to the index's object store at their
// original position in the schedule and digest-verified the same way, so
// a mixed read/update capture replays the exact write schedule — which is
// why replay takes the index by mutable reference. BatchExecutor results
// are bit-identical at any thread count and grouping, so `--threads`
// overrides never change the verdict — a mismatch means the data or the
// code changed, not the schedule.
//
// The replayed run's metrics-registry delta is reported next to the
// capture's embedded delta (the trailer written at Disable), so an
// operator can diff not only results but work: settles, cache hit rates,
// and interval percentiles, captured vs replayed.

#ifndef INDOOR_CORE_QUERY_WORKLOAD_REPLAY_H_
#define INDOOR_CORE_QUERY_WORKLOAD_REPLAY_H_

#include <cstdint>
#include <cstdio>
#include <vector>

#include "core/index/index_framework.h"
#include "util/metrics.h"
#include "util/query_log.h"
#include "util/result.h"

namespace indoor {

/// Replay knobs.
struct ReplayOptions {
  /// Worker threads for the replay executor (0 = hardware concurrency).
  /// Results are thread-count independent; this only changes wall time.
  unsigned threads = 0;
  /// Pacing: replay batches at the capture's inter-batch gaps scaled by
  /// 1/speed (2.0 = twice as fast). 0 replays as fast as possible.
  double speed = 0.0;
  /// Mismatch details retained in the report (the count is always exact).
  size_t max_mismatches = 8;
};

/// One result-digest mismatch.
struct ReplayMismatch {
  uint64_t seq = 0;
  uint8_t kind = 0;
  uint32_t captured_count = 0;
  uint32_t replayed_count = 0;
  double captured_value = 0.0;
  double replayed_value = 0.0;
};

/// Outcome of one replay run.
struct ReplayReport {
  /// Records replayed / batches they regrouped into.
  uint64_t records = 0;
  uint64_t batches = 0;
  /// Of `records`, how many were kMove records (re-applied writes).
  uint64_t move_records = 0;
  /// Records whose replayed digest matched the capture bitwise.
  uint64_t matched = 0;
  /// Records that did not (mismatches.size() caps at max_mismatches).
  uint64_t mismatched = 0;
  std::vector<ReplayMismatch> mismatches;
  /// Replay wall time.
  double wall_ms = 0.0;
  /// The capture's embedded metrics delta (empty lists if the capture
  /// carried no trailer).
  metrics::RegistrySnapshot captured_delta;
  /// The metrics-registry delta of the replay run itself.
  metrics::RegistrySnapshot replayed_delta;

  bool AllMatched() const { return mismatched == 0; }
};

/// Replays `capture` against `index`. The index must be built from the
/// same plan and INITIAL object population the capture was recorded on
/// (the capture's context block says which — see
/// QueryLogCapture::ContextMap); captured move batches then evolve the
/// population along the recorded schedule. Replaying against anything
/// else simply reports mismatches. Fails only on malformed records
/// (unknown query kind, or a batch mixing moves with queries).
Result<ReplayReport> ReplayWorkload(IndexFramework& index,
                                    const qlog::QueryLogCapture& capture,
                                    const ReplayOptions& options = {});

/// Human-readable replay summary: verdict, throughput, mismatch details,
/// and a captured-vs-replayed table of every counter plus histogram
/// count/p50/p99 pairs.
void WriteReplayReport(const ReplayReport& report, std::FILE* out);

}  // namespace indoor

#endif  // INDOOR_CORE_QUERY_WORKLOAD_REPLAY_H_
