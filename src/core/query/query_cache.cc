#include "core/query/query_cache.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/check.h"
#include "util/metrics.h"
#include "util/query_log.h"

namespace indoor {
namespace {

/// Per-thread staging for the canonical field: on a hit the cached legs
/// are copied here under the shard lock and mapped to the caller's door
/// subset outside it; on a miss the field is solved into it before being
/// copied into the cache. Capacity persists across queries, so the
/// steady-state hit path performs no allocations.
std::vector<double>& TlsFieldBuffer() {
  static thread_local std::vector<double> buffer;
  return buffer;
}

uint64_t Mix2(uint64_t a, uint64_t b) {
  return indoor::internal::MixHash(a ^ (b * 0x9e3779b97f4a7c15ull));
}

}  // namespace

size_t QueryCache::FieldKeyHash::operator()(const FieldKey& k) const {
  const uint64_t tag =
      (static_cast<uint64_t>(k.part) << 8) | static_cast<uint64_t>(k.kind);
  return static_cast<size_t>(
      Mix2(Mix2(tag, static_cast<uint64_t>(k.qx)),
           static_cast<uint64_t>(k.qy)));
}

size_t QueryCache::HostKeyHash::operator()(const HostKey& k) const {
  return static_cast<size_t>(
      Mix2(static_cast<uint64_t>(k.qx), static_cast<uint64_t>(k.qy)));
}

size_t QueryCache::ResultKeyHash::operator()(const ResultKey& k) const {
  return static_cast<size_t>(
      Mix2(Mix2(Mix2(static_cast<uint64_t>(k.kind), k.param),
                static_cast<uint64_t>(k.qx)),
           static_cast<uint64_t>(k.qy)));
}

QueryCache::QueryCache(const FloorPlan& plan, const PartitionLocator& locator,
                       const ObjectStore& objects, QueryCacheOptions options)
    : plan_(&plan),
      locator_(&locator),
      objects_(&objects),
      options_(options),
      inv_quantum_(1.0 / options.quantum),
      field_cache_(options.field_capacity_bytes, options.shards,
                   "cache.field"),
      host_cache_(options.host_capacity_bytes, options.shards, "cache.host"),
      result_cache_(options.result_capacity_bytes, options.shards,
                    "cache.result") {
  INDOOR_CHECK(options.quantum > 0.0) << "cache_quantum must be positive";
}

int64_t QueryCache::QuantizeCoord(double x) const {
  return static_cast<int64_t>(std::floor(x * inv_quantum_));
}

Result<PartitionId> QueryCache::HostPartition(const Point& p) const {
  const HostKey key{QuantizeCoord(p.x), QuantizeCoord(p.y)};
  PartitionId cached = kInvalidId;
  const bool hit = host_cache_.Lookup(key, [&](const HostEntry& entry) {
    if (!(entry.p == p)) return false;  // quantum collision: re-solve
    cached = entry.part;
    return true;
  });
  qlog::AddCacheLookup(hit);
  if (hit) return cached;
  Result<PartitionId> resolved = locator_->GetHostPartition(p);
  if (resolved.ok()) {
    // The charge approximates the map node + list node footprint.
    host_cache_.Insert(key, HostEntry{p, resolved.value()},
                       sizeof(HostEntry) + 96);
  }
  return resolved;
}

const std::vector<DoorId>& QueryCache::CanonicalDoors(FieldKind kind,
                                                      PartitionId v) const {
  return kind == FieldKind::kLeaveFrom ? plan_->LeaveDoors(v)
                                       : plan_->EnterDoors(v);
}

void QueryCache::SolveField(FieldKind kind, PartitionId v, const Point& p,
                            std::span<const DoorId> canonical,
                            GeodesicScratch* scratch, double* out) const {
  switch (kind) {
    case FieldKind::kLeaveFrom:
    case FieldKind::kEnterTo:
      locator_->DistVMany(v, p, canonical, scratch, out);
      break;
    case FieldKind::kEnterFrom: {
      // Matrix-path orientation: one geodesic solve per door, rooted at
      // the door midpoint (bit-identical to the historical loop in
      // matrix_distance.cc).
      const Partition& part = plan_->partition(v);
      for (size_t j = 0; j < canonical.size(); ++j) {
        out[j] = part.IntraDistance(plan_->door(canonical[j]).Midpoint(), p,
                                    scratch);
      }
      break;
    }
  }
}

void QueryCache::FieldLegs(FieldKind kind, PartitionId v, const Point& p,
                           std::span<const DoorId> doors,
                           GeodesicScratch* scratch, double* out) const {
  const std::vector<DoorId>& canonical = CanonicalDoors(kind, v);
  std::vector<double>& buffer = TlsFieldBuffer();
  const FieldKey key{v, static_cast<uint8_t>(kind), QuantizeCoord(p.x),
                     QuantizeCoord(p.y)};
  const bool hit = field_cache_.Lookup(key, [&](const FieldEntry& entry) {
    if (!(entry.p == p) || entry.legs.size() != canonical.size()) {
      return false;  // quantum collision: re-solve below
    }
    buffer.assign(entry.legs.begin(), entry.legs.end());
    return true;
  });
  qlog::AddCacheLookup(hit);
  if (!hit) {
    buffer.resize(canonical.size());
    SolveField(kind, v, p, canonical, scratch, buffer.data());
    field_cache_.Insert(
        key, FieldEntry{p, buffer},
        sizeof(FieldEntry) + canonical.size() * sizeof(double) + 96);
  }
  if (doors.size() == canonical.size()) {
    // Callers pass either the canonical list itself or an ascending
    // subset; equal sizes means it is the canonical list.
    std::copy(buffer.begin(), buffer.end(), out);
    return;
  }
  for (size_t i = 0; i < doors.size(); ++i) {
    const auto it =
        std::lower_bound(canonical.begin(), canonical.end(), doors[i]);
    INDOOR_CHECK(it != canonical.end() && *it == doors[i])
        << "FieldLegs door " << doors[i]
        << " is not in the canonical list of partition " << v;
    out[i] = buffer[static_cast<size_t>(it - canonical.begin())];
  }
}

QueryCache::ResultKey QueryCache::MakeResultKey(uint8_t kind, const Point& p,
                                                uint64_t param) const {
  return ResultKey{kind, QuantizeCoord(p.x), QuantizeCoord(p.y), param};
}

bool QueryCache::DepsCurrent(const ResultEntry& entry) const {
  for (const EpochDep& dep : entry.deps) {
    if (objects_->epoch(dep.part) != dep.epoch) return false;
  }
  return true;
}

bool QueryCache::FillStale(const ResultEntry& entry,
                           StaleResult* stale) const {
  stale->changed.clear();
  for (const EpochDep& dep : entry.deps) {
    if (objects_->epoch(dep.part) == dep.epoch) continue;
    if (!objects_->ChangedSince(dep.part, dep.epoch, &stale->changed)) {
      return false;  // journal window exceeded: full reject
    }
    if (stale->changed.size() > 4 * kMaxRepairObjects) return false;
  }
  std::sort(stale->changed.begin(), stale->changed.end());
  stale->changed.erase(
      std::unique(stale->changed.begin(), stale->changed.end()),
      stale->changed.end());
  if (stale->changed.size() > kMaxRepairObjects) return false;
  stale->ids.assign(entry.ids.begin(), entry.ids.end());
  stale->neighbors.assign(entry.neighbors.begin(), entry.neighbors.end());
  stale->gates.assign(entry.gates.begin(), entry.gates.end());
  return true;
}

ResultProbe QueryCache::ProbeResult(uint8_t kind, const Point& p,
                                    uint64_t param,
                                    std::vector<ObjectId>* out_ids,
                                    std::vector<Neighbor>* out_neighbors,
                                    StaleResult* stale) const {
  bool rejected = false;
  bool repairable = false;
  const bool hit = result_cache_.Lookup(
      MakeResultKey(kind, p, param), [&](const ResultEntry& entry) {
        if (!(entry.p == p) || entry.param != param) {
          return false;  // quantum collision: re-solve
        }
        if (!DepsCurrent(entry)) {
          if (stale != nullptr && FillStale(entry, stale)) {
            repairable = true;
          } else {
            rejected = true;
          }
          return false;
        }
        if (out_ids != nullptr) {
          out_ids->assign(entry.ids.begin(), entry.ids.end());
        }
        if (out_neighbors != nullptr) {
          out_neighbors->assign(entry.neighbors.begin(), entry.neighbors.end());
        }
        return true;
      });
  if (rejected) {
    epoch_rejects_.fetch_add(1, std::memory_order_relaxed);
    INDOOR_COUNTER_INC("cache.epoch_rejects");
  }
  qlog::AddCacheLookup(hit);
  if (hit) return ResultProbe::kHit;
  return repairable ? ResultProbe::kStale : ResultProbe::kMiss;
}

ResultProbe QueryCache::ProbeRangeResult(const Point& p, double r,
                                         uint8_t kind,
                                         std::vector<ObjectId>* out,
                                         StaleResult* stale) const {
  return ProbeResult(kind, p, std::bit_cast<uint64_t>(r), out, nullptr,
                     stale);
}

ResultProbe QueryCache::ProbeKnnResult(const Point& p, size_t k, uint8_t kind,
                                       std::vector<Neighbor>* out,
                                       StaleResult* stale) const {
  return ProbeResult(kind, p, static_cast<uint64_t>(k), nullptr, out, stale);
}

void QueryCache::CountEpochReject() const {
  epoch_rejects_.fetch_add(1, std::memory_order_relaxed);
  INDOOR_COUNTER_INC("cache.epoch_rejects");
}

void QueryCache::InsertResult(uint8_t kind, const Point& p, uint64_t param,
                              std::span<const PartitionId> deps,
                              std::span<const ResultGate> gates,
                              ResultEntry entry) const {
  entry.p = p;
  entry.param = param;
  entry.deps.reserve(deps.size());
  for (const PartitionId part : deps) {
    entry.deps.push_back({part, objects_->epoch(part)});
  }
  std::sort(entry.deps.begin(), entry.deps.end(),
            [](const EpochDep& a, const EpochDep& b) { return a.part < b.part; });
  entry.deps.erase(std::unique(entry.deps.begin(), entry.deps.end(),
                               [](const EpochDep& a, const EpochDep& b) {
                                 return a.part == b.part;
                               }),
                   entry.deps.end());
  // Canonicalize gates: one per (part, door), keeping the widest range
  // budget (admission is monotone in r2) / the tightest kNN leg (offers
  // are monotone in r2 the other way). kind parity encodes the flavor:
  // even = range, odd = kNN.
  const bool knn = (kind & 1) != 0;
  entry.gates.assign(gates.begin(), gates.end());
  std::sort(entry.gates.begin(), entry.gates.end(),
            [](const ResultGate& a, const ResultGate& b) {
              return a.part != b.part ? a.part < b.part : a.door < b.door;
            });
  size_t w = 0;
  for (size_t i = 0; i < entry.gates.size(); ++i) {
    if (w > 0 && entry.gates[w - 1].part == entry.gates[i].part &&
        entry.gates[w - 1].door == entry.gates[i].door) {
      ResultGate& kept = entry.gates[w - 1];
      kept.budget = knn ? std::min(kept.budget, entry.gates[i].budget)
                        : std::max(kept.budget, entry.gates[i].budget);
    } else {
      entry.gates[w++] = entry.gates[i];
    }
  }
  entry.gates.resize(w);
  const size_t bytes = EntryBytes(entry);
  result_cache_.Insert(MakeResultKey(kind, p, param), std::move(entry), bytes);
}

size_t QueryCache::EntryBytes(const ResultEntry& entry) {
  return sizeof(ResultEntry) + entry.deps.size() * sizeof(EpochDep) +
         entry.gates.size() * sizeof(ResultGate) +
         entry.ids.size() * sizeof(ObjectId) +
         entry.neighbors.size() * sizeof(Neighbor) + 96;
}

void QueryCache::CommitRepaired(uint8_t kind, const Point& p, uint64_t param,
                                const std::vector<ObjectId>* ids,
                                const std::vector<Neighbor>* neighbors) const {
  repairs_.fetch_add(1, std::memory_order_relaxed);
  INDOOR_COUNTER_INC("cache.result.repairs");
  result_cache_.Mutate(
      MakeResultKey(kind, p, param), [&](ResultEntry& entry) {
        if (entry.p == p && entry.param == param) {
          // Single-writer contract: no move interleaves with the repairing
          // query, so the epochs read here are the ones the patched
          // payload is exact under.
          for (EpochDep& dep : entry.deps) {
            dep.epoch = objects_->epoch(dep.part);
          }
          if (ids != nullptr) entry.ids = *ids;
          if (neighbors != nullptr) entry.neighbors = *neighbors;
        }
        return EntryBytes(entry);
      });
}

void QueryCache::InsertRangeResult(const Point& p, double r, uint8_t kind,
                                   std::span<const PartitionId> deps,
                                   std::span<const ResultGate> gates,
                                   const std::vector<ObjectId>& result) const {
  ResultEntry entry;
  entry.ids = result;
  InsertResult(kind, p, std::bit_cast<uint64_t>(r), deps, gates,
               std::move(entry));
}

void QueryCache::CommitRepairedRange(
    const Point& p, double r, uint8_t kind,
    const std::vector<ObjectId>& result) const {
  CommitRepaired(kind, p, std::bit_cast<uint64_t>(r), &result, nullptr);
}

void QueryCache::InsertKnnResult(const Point& p, size_t k, uint8_t kind,
                                 std::span<const PartitionId> deps,
                                 std::span<const ResultGate> gates,
                                 const std::vector<Neighbor>& result) const {
  ResultEntry entry;
  entry.neighbors = result;
  InsertResult(kind, p, static_cast<uint64_t>(k), deps, gates,
               std::move(entry));
}

void QueryCache::CommitRepairedKnn(const Point& p, size_t k, uint8_t kind,
                                   const std::vector<Neighbor>& result) const {
  CommitRepaired(kind, p, static_cast<uint64_t>(k), nullptr, &result);
}

StaleResult& TlsStaleResult() {
  static thread_local StaleResult stale;
  return stale;
}

void QueryCache::Invalidate() const {
  field_cache_.Clear();
  host_cache_.Clear();
  result_cache_.Clear();
  INDOOR_COUNTER_INC("cache.invalidations");
}

CacheStats QueryCache::FieldStats() const { return field_cache_.GetStats(); }
CacheStats QueryCache::HostStats() const { return host_cache_.GetStats(); }
CacheStats QueryCache::ResultStats() const { return result_cache_.GetStats(); }

Result<PartitionId> CachedHostPartition(const QueryCache* cache,
                                        const PartitionLocator& locator,
                                        const Point& p) {
  if (cache != nullptr) return cache->HostPartition(p);
  return locator.GetHostPartition(p);
}

void CachedFieldLegs(const QueryCache* cache, const PartitionLocator& locator,
                     FieldKind kind, PartitionId v, const Point& p,
                     std::span<const DoorId> doors, GeodesicScratch* scratch,
                     double* out) {
  if (cache != nullptr) {
    cache->FieldLegs(kind, v, p, doors, scratch, out);
    return;
  }
  switch (kind) {
    case FieldKind::kLeaveFrom:
    case FieldKind::kEnterTo:
      locator.DistVMany(v, p, doors, scratch, out);
      break;
    case FieldKind::kEnterFrom: {
      const FloorPlan& plan = locator.plan();
      const Partition& part = plan.partition(v);
      for (size_t j = 0; j < doors.size(); ++j) {
        out[j] =
            part.IntraDistance(plan.door(doors[j]).Midpoint(), p, scratch);
      }
      break;
    }
  }
}

}  // namespace indoor
