#include "core/query/query_cache.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/metrics.h"
#include "util/query_log.h"

namespace indoor {
namespace {

/// Per-thread staging for the canonical field: on a hit the cached legs
/// are copied here under the shard lock and mapped to the caller's door
/// subset outside it; on a miss the field is solved into it before being
/// copied into the cache. Capacity persists across queries, so the
/// steady-state hit path performs no allocations.
std::vector<double>& TlsFieldBuffer() {
  static thread_local std::vector<double> buffer;
  return buffer;
}

uint64_t Mix2(uint64_t a, uint64_t b) {
  return indoor::internal::MixHash(a ^ (b * 0x9e3779b97f4a7c15ull));
}

}  // namespace

size_t QueryCache::FieldKeyHash::operator()(const FieldKey& k) const {
  const uint64_t tag =
      (static_cast<uint64_t>(k.part) << 8) | static_cast<uint64_t>(k.kind);
  return static_cast<size_t>(
      Mix2(Mix2(tag, static_cast<uint64_t>(k.qx)),
           static_cast<uint64_t>(k.qy)));
}

size_t QueryCache::HostKeyHash::operator()(const HostKey& k) const {
  return static_cast<size_t>(
      Mix2(static_cast<uint64_t>(k.qx), static_cast<uint64_t>(k.qy)));
}

QueryCache::QueryCache(const FloorPlan& plan, const PartitionLocator& locator,
                       QueryCacheOptions options)
    : plan_(&plan),
      locator_(&locator),
      options_(options),
      inv_quantum_(1.0 / options.quantum),
      field_cache_(options.field_capacity_bytes, options.shards,
                   "cache.field"),
      host_cache_(options.host_capacity_bytes, options.shards, "cache.host") {
  INDOOR_CHECK(options.quantum > 0.0) << "cache_quantum must be positive";
}

int64_t QueryCache::QuantizeCoord(double x) const {
  return static_cast<int64_t>(std::floor(x * inv_quantum_));
}

Result<PartitionId> QueryCache::HostPartition(const Point& p) const {
  const HostKey key{QuantizeCoord(p.x), QuantizeCoord(p.y)};
  PartitionId cached = kInvalidId;
  const bool hit = host_cache_.Lookup(key, [&](const HostEntry& entry) {
    if (!(entry.p == p)) return false;  // quantum collision: re-solve
    cached = entry.part;
    return true;
  });
  qlog::AddCacheLookup(hit);
  if (hit) return cached;
  Result<PartitionId> resolved = locator_->GetHostPartition(p);
  if (resolved.ok()) {
    // The charge approximates the map node + list node footprint.
    host_cache_.Insert(key, HostEntry{p, resolved.value()},
                       sizeof(HostEntry) + 96);
  }
  return resolved;
}

const std::vector<DoorId>& QueryCache::CanonicalDoors(FieldKind kind,
                                                      PartitionId v) const {
  return kind == FieldKind::kLeaveFrom ? plan_->LeaveDoors(v)
                                       : plan_->EnterDoors(v);
}

void QueryCache::SolveField(FieldKind kind, PartitionId v, const Point& p,
                            std::span<const DoorId> canonical,
                            GeodesicScratch* scratch, double* out) const {
  switch (kind) {
    case FieldKind::kLeaveFrom:
    case FieldKind::kEnterTo:
      locator_->DistVMany(v, p, canonical, scratch, out);
      break;
    case FieldKind::kEnterFrom: {
      // Matrix-path orientation: one geodesic solve per door, rooted at
      // the door midpoint (bit-identical to the historical loop in
      // matrix_distance.cc).
      const Partition& part = plan_->partition(v);
      for (size_t j = 0; j < canonical.size(); ++j) {
        out[j] = part.IntraDistance(plan_->door(canonical[j]).Midpoint(), p,
                                    scratch);
      }
      break;
    }
  }
}

void QueryCache::FieldLegs(FieldKind kind, PartitionId v, const Point& p,
                           std::span<const DoorId> doors,
                           GeodesicScratch* scratch, double* out) const {
  const std::vector<DoorId>& canonical = CanonicalDoors(kind, v);
  std::vector<double>& buffer = TlsFieldBuffer();
  const FieldKey key{v, static_cast<uint8_t>(kind), QuantizeCoord(p.x),
                     QuantizeCoord(p.y)};
  const bool hit = field_cache_.Lookup(key, [&](const FieldEntry& entry) {
    if (!(entry.p == p) || entry.legs.size() != canonical.size()) {
      return false;  // quantum collision: re-solve below
    }
    buffer.assign(entry.legs.begin(), entry.legs.end());
    return true;
  });
  qlog::AddCacheLookup(hit);
  if (!hit) {
    buffer.resize(canonical.size());
    SolveField(kind, v, p, canonical, scratch, buffer.data());
    field_cache_.Insert(
        key, FieldEntry{p, buffer},
        sizeof(FieldEntry) + canonical.size() * sizeof(double) + 96);
  }
  if (doors.size() == canonical.size()) {
    // Callers pass either the canonical list itself or an ascending
    // subset; equal sizes means it is the canonical list.
    std::copy(buffer.begin(), buffer.end(), out);
    return;
  }
  for (size_t i = 0; i < doors.size(); ++i) {
    const auto it =
        std::lower_bound(canonical.begin(), canonical.end(), doors[i]);
    INDOOR_CHECK(it != canonical.end() && *it == doors[i])
        << "FieldLegs door " << doors[i]
        << " is not in the canonical list of partition " << v;
    out[i] = buffer[static_cast<size_t>(it - canonical.begin())];
  }
}

void QueryCache::Invalidate() const {
  field_cache_.Clear();
  host_cache_.Clear();
  INDOOR_COUNTER_INC("cache.invalidations");
}

CacheStats QueryCache::FieldStats() const { return field_cache_.GetStats(); }
CacheStats QueryCache::HostStats() const { return host_cache_.GetStats(); }

Result<PartitionId> CachedHostPartition(const QueryCache* cache,
                                        const PartitionLocator& locator,
                                        const Point& p) {
  if (cache != nullptr) return cache->HostPartition(p);
  return locator.GetHostPartition(p);
}

void CachedFieldLegs(const QueryCache* cache, const PartitionLocator& locator,
                     FieldKind kind, PartitionId v, const Point& p,
                     std::span<const DoorId> doors, GeodesicScratch* scratch,
                     double* out) {
  if (cache != nullptr) {
    cache->FieldLegs(kind, v, p, doors, scratch, out);
    return;
  }
  switch (kind) {
    case FieldKind::kLeaveFrom:
    case FieldKind::kEnterTo:
      locator.DistVMany(v, p, doors, scratch, out);
      break;
    case FieldKind::kEnterFrom: {
      const FloorPlan& plan = locator.plan();
      const Partition& part = plan.partition(v);
      for (size_t j = 0; j < doors.size(); ++j) {
        out[j] =
            part.IntraDistance(plan.door(doors[j]).Midpoint(), p, scratch);
      }
      break;
    }
  }
}

}  // namespace indoor
