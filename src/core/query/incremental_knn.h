// Best-first incremental nearest-neighbor search (distance browsing in the
// style of Hjaltason & Samet), built natively on the paper's index
// framework: one priority queue mixes
//   * Midx ROW CURSORS — door di's sorted Md2d row consumed lazily, keyed
//     by distV(q, di) + Md2d[di, Midx[di, j]];
//   * GRID CELLS — a partition's sub-buckets anchored at the entry door,
//     keyed by the Euclidean lower bound of the cell;
//   * OBJECTS — keyed by their exact walking distance.
// Every key lower-bounds everything the entry can produce, so objects pop
// in exact non-descending distance order and the iterator does work
// proportional to what the consumer actually pulls — unlike the k-doubling
// wrapper (nearest_iterator.h), which re-runs Algorithm 6 on growth.

#ifndef INDOOR_CORE_QUERY_INCREMENTAL_KNN_H_
#define INDOOR_CORE_QUERY_INCREMENTAL_KNN_H_

#include <queue>
#include <unordered_set>

#include "core/distance/query_scratch.h"
#include "core/index/index_framework.h"

namespace indoor {

/// Streams the objects of the index's store in non-descending walking
/// distance from `q`, computing lazily. The index must outlive the
/// browser; object mutations during browsing invalidate it.
class DistanceBrowser {
 public:
  DistanceBrowser(const IndexFramework& index, const Point& q);

  /// True if another (not yet yielded) object is reachable.
  bool HasNext();

  /// The next-nearest object. Requires HasNext().
  Neighbor Next();

  /// Number of objects yielded so far.
  size_t yielded() const { return yielded_.size(); }

 private:
  enum class Kind { kRowCursor, kCell, kObject };

  struct Entry {
    double key;
    Kind kind;
    // kRowCursor: door whose row is being consumed + position in Midx row.
    DoorId row_door = kInvalidId;
    size_t row_pos = 0;
    double row_base = 0;  // distV(q, row_door)
    // kCell: partition + cell ordinal + anchor (door midpoint or q).
    PartitionId partition = kInvalidId;
    size_t cell = 0;
    Point anchor;
    double anchor_base = 0;  // walking distance accumulated to the anchor
    // kObject:
    ObjectId object = kInvalidId;

    bool operator>(const Entry& o) const { return key > o.key; }
  };

  /// Pushes the grid cells of `partition` anchored at `anchor` with the
  /// accumulated distance `base`.
  void PushCells(PartitionId partition, const Point& anchor, double base);

  /// Advances the heap until an unyielded object surfaces on top.
  void Settle();

  const IndexFramework* index_;
  Point query_;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_set<ObjectId> yielded_;
  std::unordered_set<uint64_t> partitions_entered_;  // (partition<<32)|door
  // Browser-owned scratch: cell settlement batches all objects of a cell
  // through one geodesic solve anchored at the cell's entry point.
  QueryScratch scratch_;
  bool valid_ = false;
};

}  // namespace indoor

#endif  // INDOOR_CORE_QUERY_INCREMENTAL_KNN_H_
