// Cross-query work sharing: a read-through cache over the two costliest
// per-query resolution steps of the serving hot path —
//
//   * host-partition resolution (Locator::GetHostPartition R-tree probe),
//   * source/destination door distance fields (Locator::DistVMany entry
//     and exit legs, plus the matrix path's door->point exit legs).
//
// Both caches key on the query position quantized to a configurable grid
// (IndexOptions::cache_quantum) but store the EXACT position alongside
// the cached value: a lookup only counts as a hit when the stored point
// matches the queried point bit-for-bit, so quantization governs only
// collision granularity, never the returned values. On a quantum-cell
// collision with a different exact point the entry is re-solved and
// replaced — exactness is preserved by construction, and every cached
// path stays bit-identical to the uncached one (field values come from
// the same DistVMany / IntraDistance evaluations, whose one-to-many
// batching guarantees per-target values independent of batch
// composition; see visibility_graph.h).
//
// Fields are cached over the partition's full canonical door list
// (LeaveDoors / EnterDoors); callers that need a pruned subset (Algorithm
// 3/4 source doors) extract their values from the canonical field by
// binary search, which is exact for the same reason.
//
// A third cache shares whole range/kNN results across queries. Unlike the
// field and host caches — which are pure geometry and never depend on the
// object population — result entries are object-dependent, so each one
// records the (partition, epoch) pairs it was derived from (the host
// partition plus every partition whose bucket the search examined; see
// range_query.cc / knn_query.cc for why that set is sufficient). Writes
// never sweep the cache: ObjectStore bumps the epochs of the partitions a
// move touches, and a lookup lazily notices an entry whose recorded
// epochs no longer match.
//
// A stale entry is not necessarily lost. Each result entry also stores
// its *gates* — the (partition, door, residual budget) triples the fresh
// search would evaluate, which are pure geometry and object-independent —
// and the store's per-partition change journal names exactly which
// objects account for a small epoch delta. The query layer uses the two
// to REPAIR a stale entry: re-test only the moved objects against the
// gates (bit-identical float expressions to the full search) and patch or
// revalidate the cached result (`cache.result.repairs`). Only when the
// journal window is exceeded, too many objects moved, or a moved object
// provably perturbs a kNN result does the lookup fall back to a full
// reject (counted as `cache.epoch_rejects`); the entry is then replaced
// when the query re-solves. Geometry entries survive every write.
//
// Threading: all methods are safe for any number of concurrent callers
// (sharded LRU with per-shard locking, see util/sharded_cache.h). Epoch
// snapshots rely on the store's single-writer contract: a query runs
// entirely between writes, so the epochs it records at insert time are
// the ones its result was computed under. Invalidate() remains as an
// operator-facing full reset; the write path no longer calls it.

#ifndef INDOOR_CORE_QUERY_QUERY_CACHE_H_
#define INDOOR_CORE_QUERY_QUERY_CACHE_H_

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "core/index/object_store.h"
#include "core/model/locator.h"
#include "util/sharded_cache.h"

namespace indoor {

/// Which distance field of a partition is being cached. The kinds differ
/// in canonical door list and in floating-point evaluation orientation,
/// both of which must match the uncached call site bit-for-bit.
enum class FieldKind : uint8_t {
  /// Entry legs distV(p, d) over LeaveDoors(v) (pt2pt source side, range
  /// and kNN door expansion). Computed by one DistVMany solve rooted at p.
  kLeaveFrom = 0,
  /// Exit legs distV(p, d) over EnterDoors(v) (pt2pt destination side).
  /// Also one DistVMany solve rooted at p.
  kEnterTo = 1,
  /// Matrix-path exit legs over EnterDoors(v) in the historical door->p
  /// orientation: one IntraDistance(door midpoint, p) solve per door.
  kEnterFrom = 2,
};

/// Tuning knobs; defaults are set from IndexOptions in index_framework.
struct QueryCacheOptions {
  /// Quantization grid edge (same unit as plan coordinates). Governs how
  /// many distinct positions can share a cache cell — not exactness.
  double quantum = 0.25;
  /// Byte budget of the distance-field cache.
  size_t field_capacity_bytes = 24u << 20;
  /// Byte budget of the host-partition cache.
  size_t host_capacity_bytes = 8u << 20;
  /// Byte budget of the range/kNN result cache.
  size_t result_capacity_bytes = 8u << 20;
  /// LRU shards per cache (rounded up to a power of two).
  size_t shards = 16;
};

/// One residual search budget of a cached range/kNN result — pure
/// geometry, recorded at the SearchSide call sites of the fresh
/// execution. For a range result the fresh search admits an object of
/// `part` reached via `door` iff fdv <= budget (whole-partition
/// inclusion) or its intra-partition distance from the door midpoint is
/// <= budget, with `budget` the largest residual radius r2 any door
/// expansion granted that (part, door) pair. For a kNN result `budget`
/// is the smallest accumulated q-to-door leg r2, and the fresh search
/// offers intra-distance + budget; `fdv` is unused. Because the reach
/// set and every budget depend only on geometry (and, for kNN, on the
/// cached k-th distance they are validated against), gates stay exact
/// across any object movement.
struct ResultGate {
  PartitionId part = kInvalidId;
  DoorId door = kInvalidId;
  double budget = 0.0;
  double fdv = kInfDistance;
};

/// Probe verdict for a cached range/kNN result.
enum class ResultProbe : uint8_t {
  kHit,    ///< current entry served into `out`
  kMiss,   ///< no usable entry (includes unrepairable stale = epoch reject)
  kStale,  ///< stale but repairable: StaleResult filled, caller repairs
};

/// Repair workspace handed back by a kStale probe: the cached payload,
/// its gates, and the deduplicated ids of every object that moved in or
/// out of the dependency partitions since the entry was cached.
struct StaleResult {
  std::vector<ObjectId> ids;          // range payload (sorted)
  std::vector<Neighbor> neighbors;    // kNN payload (nearest first)
  std::vector<ResultGate> gates;
  std::vector<ObjectId> changed;      // deduplicated journal ids
};

/// The calling thread's reusable StaleResult (and, during fresh
/// executions, gate-recording buffer) — same idiom as the field staging
/// buffer: one query at a time per thread, capacity persists.
StaleResult& TlsStaleResult();

/// The serving-layer caches over one index whose geometry is immutable
/// but whose object population moves. The plan, locator, and object store
/// must outlive the cache.
class QueryCache {
 public:
  QueryCache(const FloorPlan& plan, const PartitionLocator& locator,
             const ObjectStore& objects, QueryCacheOptions options);

  /// getHostPartition(p) through the cache: returns the cached partition
  /// on an exact-point hit, otherwise delegates to the locator and caches
  /// positive results. Error results (outdoor points) are never cached.
  Result<PartitionId> HostPartition(const Point& p) const;

  /// Fills out[i] with the field value of doors[i], where `doors` must be
  /// a subset of the canonical door list of (kind, v) — LeaveDoors(v) for
  /// kLeaveFrom, EnterDoors(v) otherwise. Serves from the cached canonical
  /// field on an exact-point hit; re-solves and caches it otherwise. A
  /// steady-state hit performs no heap allocations.
  void FieldLegs(FieldKind kind, PartitionId v, const Point& p,
                 std::span<const DoorId> doors, GeodesicScratch* scratch,
                 double* out) const;

  /// Probes for a cached Qr(p, r) result on an exact-(point, radius,
  /// kind) match. kHit: every recorded partition epoch is current, `out`
  /// is filled. kStale (only when `stale` is non-null): epochs moved but
  /// the change journals cover the delta with at most kMaxRepairObjects
  /// distinct objects — `stale` is filled and the caller is expected to
  /// repair and CommitRepairedRange. kMiss otherwise; an unrepairable
  /// stale entry counts as an epoch reject. `kind` discriminates query
  /// flavors that may not be bit-identical (use_index_matrix modes); the
  /// query call sites own the encoding.
  ResultProbe ProbeRangeResult(const Point& p, double r, uint8_t kind,
                               std::vector<ObjectId>* out,
                               StaleResult* stale) const;

  /// Convenience wrapper: probe without repair; true on kHit.
  bool LookupRangeResult(const Point& p, double r, uint8_t kind,
                         std::vector<ObjectId>* out) const {
    return ProbeRangeResult(p, r, kind, out, nullptr) == ResultProbe::kHit;
  }

  /// Caches a Qr(p, r) result. `deps` is the set of partitions whose
  /// object population the result depends on and `gates` the residual
  /// budgets the search evaluated (duplicates allowed in both; the entry
  /// stores them canonicalized — deps with their current epochs, gates
  /// merged per (part, door) keeping the widest range budget / tightest
  /// kNN leg). Must be called before any subsequent write, i.e. from
  /// within the query that computed `result` (single-writer contract).
  void InsertRangeResult(const Point& p, double r, uint8_t kind,
                         std::span<const PartitionId> deps,
                         std::span<const ResultGate> gates,
                         const std::vector<ObjectId>& result) const;

  /// Persists a repaired range result by patching the stale entry IN
  /// PLACE under its shard lock: the repaired payload replaces the cached
  /// one and the dependency epochs are refreshed to the store's current
  /// values (exact under the single-writer contract — no move interleaves
  /// with the repairing query). Gates and dependency partitions are
  /// object-independent and stay as recorded; nothing is re-sorted or
  /// re-allocated beyond the payload assignment. Counts the repair. An
  /// entry evicted between probe and commit is simply skipped.
  void CommitRepairedRange(const Point& p, double r, uint8_t kind,
                           const std::vector<ObjectId>& result) const;

  /// Qnn(p, k) analogues of the range-result group above. A stale kNN
  /// entry is patched exactly by the query layer — moved objects are
  /// removed from / merged into the cached top-k against the cached k-th
  /// bound (see knn_query.cc) — and committed here; when the patch cannot
  /// be proven exact the caller records a reject via CountEpochReject and
  /// re-solves.
  ResultProbe ProbeKnnResult(const Point& p, size_t k, uint8_t kind,
                             std::vector<Neighbor>* out,
                             StaleResult* stale) const;
  bool LookupKnnResult(const Point& p, size_t k, uint8_t kind,
                       std::vector<Neighbor>* out) const {
    return ProbeKnnResult(p, k, kind, out, nullptr) == ResultProbe::kHit;
  }
  void InsertKnnResult(const Point& p, size_t k, uint8_t kind,
                       std::span<const PartitionId> deps,
                       std::span<const ResultGate> gates,
                       const std::vector<Neighbor>& result) const;
  void CommitRepairedKnn(const Point& p, size_t k, uint8_t kind,
                         const std::vector<Neighbor>& result) const;

  /// Records an epoch reject decided outside the probe (a kStale kNN
  /// entry whose repair test failed).
  void CountEpochReject() const;

  /// A stale entry whose journals name more than this many distinct
  /// moved objects is rejected rather than repaired (a full re-solve is
  /// cheaper than that many per-object gate tests).
  static constexpr size_t kMaxRepairObjects = 64;

  /// Drops every cached entry (operator-facing full reset; the write path
  /// relies on epoch rejection instead).
  void Invalidate() const;

  CacheStats FieldStats() const;
  CacheStats HostStats() const;
  CacheStats ResultStats() const;
  /// Result-cache lookups rejected because a dependency epoch moved and
  /// the entry could not be repaired. Counted even in metrics-OFF builds.
  uint64_t EpochRejects() const {
    return epoch_rejects_.load(std::memory_order_relaxed);
  }
  /// Stale result-cache entries salvaged by the repair path. Counted even
  /// in metrics-OFF builds.
  uint64_t Repairs() const {
    return repairs_.load(std::memory_order_relaxed);
  }
  const QueryCacheOptions& options() const { return options_; }

  // Quantized cell keys. 16 bits of partition+kind, then the two mixed
  // cell coordinates; collisions only cost a re-solve, never exactness.
  struct FieldKey {
    PartitionId part;
    uint8_t kind;
    int64_t qx, qy;
    bool operator==(const FieldKey&) const = default;
  };
  struct HostKey {
    int64_t qx, qy;
    bool operator==(const HostKey&) const = default;
  };
  struct ResultKey {
    uint8_t kind;  // caller-encoded query flavor (range/kNN x options)
    int64_t qx, qy;
    uint64_t param;  // bit pattern of r (range) or k (kNN)
    bool operator==(const ResultKey&) const = default;
  };
  struct FieldKeyHash {
    size_t operator()(const FieldKey& k) const;
  };
  struct HostKeyHash {
    size_t operator()(const HostKey& k) const;
  };
  struct ResultKeyHash {
    size_t operator()(const ResultKey& k) const;
  };

 private:
  struct FieldEntry {
    Point p;  // exact source position the field was solved from
    std::vector<double> legs;
  };
  struct HostEntry {
    Point p;
    PartitionId part;
  };
  struct EpochDep {
    PartitionId part;
    uint64_t epoch;
  };
  struct ResultEntry {
    Point p;          // exact query position
    uint64_t param;   // exact radius bits / k
    std::vector<EpochDep> deps;
    std::vector<ResultGate> gates;    // repair budgets (see ResultGate)
    std::vector<ObjectId> ids;        // range payload
    std::vector<Neighbor> neighbors;  // kNN payload
  };

  int64_t QuantizeCoord(double x) const;
  const std::vector<DoorId>& CanonicalDoors(FieldKind kind,
                                            PartitionId v) const;
  void SolveField(FieldKind kind, PartitionId v, const Point& p,
                  std::span<const DoorId> canonical, GeodesicScratch* scratch,
                  double* out) const;

  ResultKey MakeResultKey(uint8_t kind, const Point& p, uint64_t param) const;
  /// True when every recorded dependency epoch still matches the store.
  bool DepsCurrent(const ResultEntry& entry) const;
  /// Fills `stale` (payload, gates, deduplicated changed ids) from
  /// a stale entry; false when the journals cannot cover the delta or too
  /// many objects moved.
  bool FillStale(const ResultEntry& entry, StaleResult* stale) const;
  /// Shared probe body; `out_ids`/`out_neighbors` selects the payload.
  ResultProbe ProbeResult(uint8_t kind, const Point& p, uint64_t param,
                          std::vector<ObjectId>* out_ids,
                          std::vector<Neighbor>* out_neighbors,
                          StaleResult* stale) const;
  void InsertResult(uint8_t kind, const Point& p, uint64_t param,
                    std::span<const PartitionId> deps,
                    std::span<const ResultGate> gates,
                    ResultEntry entry) const;
  /// Shared body of the CommitRepaired* pair: in-place payload patch +
  /// epoch refresh via ShardedCache::Mutate. Exactly one of
  /// `ids`/`neighbors` is non-null.
  void CommitRepaired(uint8_t kind, const Point& p, uint64_t param,
                      const std::vector<ObjectId>* ids,
                      const std::vector<Neighbor>* neighbors) const;
  static size_t EntryBytes(const ResultEntry& entry);

  const FloorPlan* plan_;
  const PartitionLocator* locator_;
  const ObjectStore* objects_;
  QueryCacheOptions options_;
  double inv_quantum_;
  mutable ShardedCache<FieldKey, FieldEntry, FieldKeyHash> field_cache_;
  mutable ShardedCache<HostKey, HostEntry, HostKeyHash> host_cache_;
  mutable ShardedCache<ResultKey, ResultEntry, ResultKeyHash> result_cache_;
  mutable std::atomic<uint64_t> epoch_rejects_{0};
  mutable std::atomic<uint64_t> repairs_{0};
};

/// Read-through helpers used by the query algorithms: consult `cache`
/// when non-null, fall back to the direct locator evaluation otherwise
/// (reference implementations and cache-off indexes take the fallback, so
/// equivalence oracles stay pure).
Result<PartitionId> CachedHostPartition(const QueryCache* cache,
                                        const PartitionLocator& locator,
                                        const Point& p);

/// `doors` must be a subset of the canonical door list of (kind, v); see
/// QueryCache::FieldLegs. The null-cache fallback reproduces the
/// historical uncached evaluation exactly.
void CachedFieldLegs(const QueryCache* cache, const PartitionLocator& locator,
                     FieldKind kind, PartitionId v, const Point& p,
                     std::span<const DoorId> doors, GeodesicScratch* scratch,
                     double* out);

}  // namespace indoor

#endif  // INDOOR_CORE_QUERY_QUERY_CACHE_H_
