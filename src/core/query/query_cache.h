// Cross-query work sharing: a read-through cache over the two costliest
// per-query resolution steps of the serving hot path —
//
//   * host-partition resolution (Locator::GetHostPartition R-tree probe),
//   * source/destination door distance fields (Locator::DistVMany entry
//     and exit legs, plus the matrix path's door->point exit legs).
//
// Both caches key on the query position quantized to a configurable grid
// (IndexOptions::cache_quantum) but store the EXACT position alongside
// the cached value: a lookup only counts as a hit when the stored point
// matches the queried point bit-for-bit, so quantization governs only
// collision granularity, never the returned values. On a quantum-cell
// collision with a different exact point the entry is re-solved and
// replaced — exactness is preserved by construction, and every cached
// path stays bit-identical to the uncached one (field values come from
// the same DistVMany / IntraDistance evaluations, whose one-to-many
// batching guarantees per-target values independent of batch
// composition; see visibility_graph.h).
//
// Fields are cached over the partition's full canonical door list
// (LeaveDoors / EnterDoors); callers that need a pruned subset (Algorithm
// 3/4 source doors) extract their values from the canonical field by
// binary search, which is exact for the same reason.
//
// Threading: all methods are safe for any number of concurrent callers
// (sharded LRU with per-shard locking, see util/sharded_cache.h).
// Invalidate() is the write-path hook: QueryEngine::AddObject/MoveObject
// clear the cache so the serving layer never has to reason about which
// entries a write could have influenced.

#ifndef INDOOR_CORE_QUERY_QUERY_CACHE_H_
#define INDOOR_CORE_QUERY_QUERY_CACHE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/model/locator.h"
#include "util/sharded_cache.h"

namespace indoor {

/// Which distance field of a partition is being cached. The kinds differ
/// in canonical door list and in floating-point evaluation orientation,
/// both of which must match the uncached call site bit-for-bit.
enum class FieldKind : uint8_t {
  /// Entry legs distV(p, d) over LeaveDoors(v) (pt2pt source side, range
  /// and kNN door expansion). Computed by one DistVMany solve rooted at p.
  kLeaveFrom = 0,
  /// Exit legs distV(p, d) over EnterDoors(v) (pt2pt destination side).
  /// Also one DistVMany solve rooted at p.
  kEnterTo = 1,
  /// Matrix-path exit legs over EnterDoors(v) in the historical door->p
  /// orientation: one IntraDistance(door midpoint, p) solve per door.
  kEnterFrom = 2,
};

/// Tuning knobs; defaults are set from IndexOptions in index_framework.
struct QueryCacheOptions {
  /// Quantization grid edge (same unit as plan coordinates). Governs how
  /// many distinct positions can share a cache cell — not exactness.
  double quantum = 0.25;
  /// Byte budget of the distance-field cache.
  size_t field_capacity_bytes = 24u << 20;
  /// Byte budget of the host-partition cache.
  size_t host_capacity_bytes = 8u << 20;
  /// LRU shards per cache (rounded up to a power of two).
  size_t shards = 16;
};

/// The two serving-layer caches over one immutable index. The plan and
/// locator must outlive the cache.
class QueryCache {
 public:
  QueryCache(const FloorPlan& plan, const PartitionLocator& locator,
             QueryCacheOptions options);

  /// getHostPartition(p) through the cache: returns the cached partition
  /// on an exact-point hit, otherwise delegates to the locator and caches
  /// positive results. Error results (outdoor points) are never cached.
  Result<PartitionId> HostPartition(const Point& p) const;

  /// Fills out[i] with the field value of doors[i], where `doors` must be
  /// a subset of the canonical door list of (kind, v) — LeaveDoors(v) for
  /// kLeaveFrom, EnterDoors(v) otherwise. Serves from the cached canonical
  /// field on an exact-point hit; re-solves and caches it otherwise. A
  /// steady-state hit performs no heap allocations.
  void FieldLegs(FieldKind kind, PartitionId v, const Point& p,
                 std::span<const DoorId> doors, GeodesicScratch* scratch,
                 double* out) const;

  /// Drops every cached entry (write-path invalidation).
  void Invalidate() const;

  CacheStats FieldStats() const;
  CacheStats HostStats() const;
  const QueryCacheOptions& options() const { return options_; }

  // Quantized cell keys. 16 bits of partition+kind, then the two mixed
  // cell coordinates; collisions only cost a re-solve, never exactness.
  struct FieldKey {
    PartitionId part;
    uint8_t kind;
    int64_t qx, qy;
    bool operator==(const FieldKey&) const = default;
  };
  struct HostKey {
    int64_t qx, qy;
    bool operator==(const HostKey&) const = default;
  };
  struct FieldKeyHash {
    size_t operator()(const FieldKey& k) const;
  };
  struct HostKeyHash {
    size_t operator()(const HostKey& k) const;
  };

 private:
  struct FieldEntry {
    Point p;  // exact source position the field was solved from
    std::vector<double> legs;
  };
  struct HostEntry {
    Point p;
    PartitionId part;
  };

  int64_t QuantizeCoord(double x) const;
  const std::vector<DoorId>& CanonicalDoors(FieldKind kind,
                                            PartitionId v) const;
  void SolveField(FieldKind kind, PartitionId v, const Point& p,
                  std::span<const DoorId> canonical, GeodesicScratch* scratch,
                  double* out) const;

  const FloorPlan* plan_;
  const PartitionLocator* locator_;
  QueryCacheOptions options_;
  double inv_quantum_;
  mutable ShardedCache<FieldKey, FieldEntry, FieldKeyHash> field_cache_;
  mutable ShardedCache<HostKey, HostEntry, HostKeyHash> host_cache_;
};

/// Read-through helpers used by the query algorithms: consult `cache`
/// when non-null, fall back to the direct locator evaluation otherwise
/// (reference implementations and cache-off indexes take the fallback, so
/// equivalence oracles stay pure).
Result<PartitionId> CachedHostPartition(const QueryCache* cache,
                                        const PartitionLocator& locator,
                                        const Point& p);

/// `doors` must be a subset of the canonical door list of (kind, v); see
/// QueryCache::FieldLegs. The null-cache fallback reproduces the
/// historical uncached evaluation exactly.
void CachedFieldLegs(const QueryCache* cache, const PartitionLocator& locator,
                     FieldKind kind, PartitionId v, const Point& p,
                     std::span<const DoorId> doors, GeodesicScratch* scratch,
                     double* out);

}  // namespace indoor

#endif  // INDOOR_CORE_QUERY_QUERY_CACHE_H_
