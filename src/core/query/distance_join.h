// Indoor distance join: all object pairs within walking distance r of each
// other — one of the composite queries the paper's §VII points to
// ("consider other types of distance-aware indoor queries ... by using the
// query types in this paper as building blocks"). Useful for proximity
// alerting (which visitors are near which exhibits) and contact tracing.
//
// With one-way doors the walking distance is asymmetric; a pair qualifies
// when min(d(a->b), d(b->a)) <= r and that minimum is reported.
//
// Evaluation uses the pre-computed Md2d for partition-level pruning: for
// partitions P, Q the door-level bound min over (ds in P2D_leave(P),
// dt in P2D_enter(Q)) of Md2d[ds, dt] lower-bounds every inter-object
// distance (the intra-partition legs are non-negative), so partition pairs
// beyond r are skipped wholesale before any object is touched.

#ifndef INDOOR_CORE_QUERY_DISTANCE_JOIN_H_
#define INDOOR_CORE_QUERY_DISTANCE_JOIN_H_

#include <vector>

#include "core/index/index_framework.h"

namespace indoor {

/// One qualifying pair; a < b, distance = min over both directions.
struct JoinPair {
  ObjectId a = kInvalidId;
  ObjectId b = kInvalidId;
  double distance = kInfDistance;

  bool operator==(const JoinPair& o) const {
    return a == o.a && b == o.b;
  }
};

/// Self-join over the index's object store: all unordered pairs within
/// walking distance `r`, sorted by (a, b).
std::vector<JoinPair> DistanceJoin(const IndexFramework& index, double r);

/// Exact symmetric walking distance min(d(a->b), d(b->a)) between two
/// stored objects, via Md2d (used by the join and handy on its own).
double ObjectPairDistance(const IndexFramework& index, const IndoorObject& a,
                          const IndoorObject& b);

}  // namespace indoor

#endif  // INDOOR_CORE_QUERY_DISTANCE_JOIN_H_
