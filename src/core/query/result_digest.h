// Result digests: the fixed-size summary of a query result that travels
// in a QueryLogRecord (util/query_log.h) and is recomputed at replay time
// (workload_replay.h) to prove bitwise result equality.
//
// Each digest fits the record's single double:
//
//   kDistance — the pt2pt distance itself (already one double; inf for
//               unreachable/outdoor compares bitwise like any other value);
//   kRange    — a 53-bit order-independent hash of the result ids (the
//               result is sorted and deduplicated, but order-independence
//               makes the digest robust to representation changes);
//   kKnn      — a 53-bit order-DEPENDENT fold of ids and distance bit
//               patterns (nearest-first order is part of the contract).
//
// 53 bits because the digest is stored in a double: every value is an
// exactly-representable integer, so capture, JSONL round-trips, and replay
// comparison are all bit-exact. Capture sites and replay must call these
// same helpers — that symmetry, not the hash choice, is the correctness
// property.

#ifndef INDOOR_CORE_QUERY_RESULT_DIGEST_H_
#define INDOOR_CORE_QUERY_RESULT_DIGEST_H_

#include <cstdint>
#include <cstring>
#include <span>

#include "core/index/grid_index.h"
#include "core/query/batch_executor.h"
#include "indoor/types.h"

namespace indoor {
namespace qdigest {

/// SplitMix64 finalizer: a cheap, well-distributed 64-bit mixer.
inline uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Folds a 64-bit hash into an exactly-representable double (53 bits).
inline double ToDigest(uint64_t h) { return static_cast<double>(h >> 11); }

/// Order-independent digest of a range result (sum of per-id mixes).
inline double RangeDigest(std::span<const ObjectId> ids) {
  uint64_t h = 0;
  for (const ObjectId id : ids) h += Mix(static_cast<uint64_t>(id) + 1);
  return ToDigest(h);
}

/// Order-dependent digest of a kNN result: folds each neighbor's id and
/// distance bit pattern into a running hash, so any change in membership,
/// order, or any distance double flips it.
inline double KnnDigest(std::span<const Neighbor> neighbors) {
  uint64_t h = 0;
  for (const Neighbor& nb : neighbors) {
    uint64_t bits = 0;
    std::memcpy(&bits, &nb.distance, sizeof(bits));
    h = Mix(h ^ static_cast<uint64_t>(nb.id)) ^ Mix(bits);
  }
  return ToDigest(h);
}

/// Digest of one applied move (kMove records): folds the object id, the
/// target partition, and the exact target-position bit patterns, so a
/// replayed move that lands anywhere else — or is rejected — flips it.
inline double MoveDigest(ObjectId id, PartitionId partition, double x,
                         double y) {
  uint64_t xbits = 0, ybits = 0;
  std::memcpy(&xbits, &x, sizeof(xbits));
  std::memcpy(&ybits, &y, sizeof(ybits));
  uint64_t h = Mix(static_cast<uint64_t>(id) + 1);
  h = Mix(h ^ static_cast<uint64_t>(partition)) ^ Mix(xbits);
  h = Mix(h) ^ Mix(ybits);
  return ToDigest(h);
}

/// The record's result_count for one (request, result) pair: reachable
/// 1/0 for pt2pt, result-set size otherwise.
inline uint32_t DigestCount(const QueryRequest& request,
                            const QueryResult& result) {
  switch (request.kind) {
    case QueryRequest::Kind::kDistance:
      return result.distance < kInfDistance ? 1u : 0u;
    case QueryRequest::Kind::kRange:
      return static_cast<uint32_t>(result.ids.size());
    case QueryRequest::Kind::kKnn:
      return static_cast<uint32_t>(result.neighbors.size());
  }
  return 0;
}

/// The record's result_value for one (request, result) pair.
inline double DigestValue(const QueryRequest& request,
                          const QueryResult& result) {
  switch (request.kind) {
    case QueryRequest::Kind::kDistance:
      return result.distance;
    case QueryRequest::Kind::kRange:
      return RangeDigest(result.ids);
    case QueryRequest::Kind::kKnn:
      return KnnDigest(result.neighbors);
  }
  return 0.0;
}

}  // namespace qdigest
}  // namespace indoor

#endif  // INDOOR_CORE_QUERY_RESULT_DIGEST_H_
