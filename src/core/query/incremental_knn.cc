#include "core/query/incremental_knn.h"

namespace indoor {

DistanceBrowser::DistanceBrowser(const IndexFramework& index, const Point& q)
    : index_(&index), query_(q) {
  const auto host = index.locator().GetHostPartition(q);
  if (!host.ok()) return;
  valid_ = true;
  const PartitionId v = host.value();
  // The host partition's own cells, anchored at the query itself.
  PushCells(v, q, 0.0);
  // One row cursor per leaveable door of the host partition; all distV
  // legs come from one batched geodesic solve rooted at q.
  const FloorPlan& plan = index.plan();
  const auto& src_doors = plan.LeaveDoors(v);
  auto& src_leg = scratch_.src_leg;
  src_leg.resize(src_doors.size());
  index.locator().DistVMany(v, q, src_doors, &scratch_.geo, src_leg.data());
  for (size_t i = 0; i < src_doors.size(); ++i) {
    const DoorId ds = src_doors[i];
    const double base = src_leg[i];
    if (base == kInfDistance) continue;
    Entry entry;
    entry.kind = Kind::kRowCursor;
    entry.row_door = ds;
    entry.row_pos = 0;
    entry.row_base = base;
    // Midx[ds][0] is ds itself at Md2d 0, so the initial key is base.
    entry.key = base + index.d2d_matrix().At(
                           ds, index.index_matrix().At(ds, 0));
    heap_.push(entry);
  }
}

void DistanceBrowser::PushCells(PartitionId partition, const Point& anchor,
                                double base) {
  const GridBucket& bucket = index_->objects().bucket(partition);
  if (bucket.size() == 0) return;
  const double scale = index_->plan().partition(partition).metric_scale();
  for (size_t c = 0; c < bucket.cell_count(); ++c) {
    if (bucket.CellContents(c).empty()) continue;
    Entry entry;
    entry.kind = Kind::kCell;
    entry.partition = partition;
    entry.cell = c;
    entry.anchor = anchor;
    entry.anchor_base = base;
    entry.key = base + bucket.CellRectAt(c).MinDistance(anchor) * scale;
    heap_.push(entry);
  }
}

void DistanceBrowser::Settle() {
  const FloorPlan& plan = index_->plan();
  while (!heap_.empty()) {
    const Entry top = heap_.top();
    if (top.kind == Kind::kObject) {
      if (yielded_.count(top.object)) {
        heap_.pop();
        continue;
      }
      return;  // next object ready
    }
    heap_.pop();
    if (top.kind == Kind::kRowCursor) {
      const DoorId dj =
          index_->index_matrix().At(top.row_door, top.row_pos);
      const double dist_dj = top.key;  // row_base + Md2d[row_door, dj]
      // Enter dj's partitions unless a cheaper entry already did.
      const DptRecord& rec = index_->dpt()[dj];
      for (PartitionId part : {rec.part1, rec.part2}) {
        if (part == kInvalidId) continue;
        const uint64_t tag = (static_cast<uint64_t>(part) << 32) | dj;
        if (!partitions_entered_.insert(tag).second) continue;
        PushCells(part, plan.door(dj).Midpoint(), dist_dj);
      }
      // Advance the cursor.
      const size_t next = top.row_pos + 1;
      if (next < plan.door_count()) {
        const DoorId dn = index_->index_matrix().At(top.row_door, next);
        const double md = index_->d2d_matrix().At(top.row_door, dn);
        if (md != kInfDistance) {
          Entry entry = top;
          entry.row_pos = next;
          entry.key = top.row_base + md;
          heap_.push(entry);
        }
      }
    } else {  // kCell
      const Partition& part = plan.partition(top.partition);
      const GridBucket& bucket = index_->objects().bucket(top.partition);
      const auto& contents = bucket.CellContents(top.cell);
      // One batched geodesic solve from the anchor covers every unyielded
      // object of the cell (identical values to per-object IntraDistance).
      auto& pts = scratch_.geo.points;
      pts.clear();
      for (const auto& [id, pos] : contents) {
        if (!yielded_.count(id)) pts.push_back(pos);
      }
      if (pts.empty()) continue;
      auto& legs = scratch_.src_leg;
      legs.resize(pts.size());
      part.IntraDistancesToMany(top.anchor, pts, &scratch_.geo, legs.data());
      size_t next_leg = 0;
      for (const auto& [id, pos] : contents) {
        if (yielded_.count(id)) continue;
        const double leg = legs[next_leg++];
        if (leg == kInfDistance) continue;
        Entry entry;
        entry.kind = Kind::kObject;
        entry.object = id;
        entry.key = top.anchor_base + leg;
        heap_.push(entry);
      }
    }
  }
}

bool DistanceBrowser::HasNext() {
  if (!valid_) return false;
  Settle();
  return !heap_.empty();
}

Neighbor DistanceBrowser::Next() {
  INDOOR_CHECK(HasNext()) << "DistanceBrowser exhausted";
  const Entry top = heap_.top();
  heap_.pop();
  yielded_.insert(top.object);
  return {top.object, top.key};
}

}  // namespace indoor
