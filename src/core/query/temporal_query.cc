#include "core/query/temporal_query.h"

#include <algorithm>

#include "core/distance/query_scratch.h"

namespace indoor {
namespace {

/// Seeds for the snapshot Dijkstra: the host partition's leaveable doors
/// with their distV legs, resolved through one batched geodesic solve.
std::vector<std::pair<DoorId, double>> SeedsFrom(const IndexFramework& index,
                                                 PartitionId v, const Point& q,
                                                 QueryScratch* scratch) {
  std::vector<std::pair<DoorId, double>> seeds;
  const auto& src_doors = index.plan().LeaveDoors(v);
  auto& src_leg = scratch->src_leg;
  src_leg.resize(src_doors.size());
  index.locator().DistVMany(v, q, src_doors, &scratch->geo, src_leg.data());
  for (size_t i = 0; i < src_doors.size(); ++i) {
    if (src_leg[i] != kInfDistance) seeds.push_back({src_doors[i], src_leg[i]});
  }
  return seeds;
}

}  // namespace

std::vector<ObjectId> RangeQueryAtTime(const IndexFramework& index,
                                       const DoorSchedule& schedule,
                                       double time, const Point& q,
                                       double r) {
  std::vector<ObjectId> result;
  const FloorPlan& plan = index.plan();
  const auto host = index.locator().GetHostPartition(q);
  if (!host.ok() || r < 0) return result;
  const PartitionId v = host.value();
  QueryScratch& scratch = TlsQueryScratch();

  // Host partition first (intra-partition movement needs no doors).
  {
    std::vector<Neighbor>& found = scratch.neighbors;
    found.clear();
    index.objects().bucket(v).RangeSearch(plan.partition(v), q, r, &found,
                                          &scratch.bucket);
    for (const Neighbor& nb : found) result.push_back(nb.id);
  }

  // One snapshot Dijkstra replaces the Md2d row scans of Algorithm 5.
  std::vector<double> dist;
  internal::SnapshotDijkstra(index.graph(), schedule, time,
                             SeedsFrom(index, v, q, &scratch), kInvalidId,
                             &dist, nullptr);
  const DoorPartitionTable& dpt = index.dpt();
  for (DoorId dj = 0; dj < plan.door_count(); ++dj) {
    if (dist[dj] > r) continue;
    const double r2 = r - dist[dj];
    for (const auto& [part, fdv] :
         {std::pair{dpt[dj].part1, dpt[dj].dist1},
          std::pair{dpt[dj].part2, dpt[dj].dist2}}) {
      if (part == kInvalidId) continue;
      const GridBucket& bucket = index.objects().bucket(part);
      if (bucket.size() == 0) continue;
      if (fdv <= r2) {
        bucket.CollectAll(&result);
        continue;
      }
      std::vector<Neighbor>& found = scratch.neighbors;
      found.clear();
      bucket.RangeSearch(plan.partition(part), plan.door(dj).Midpoint(), r2,
                         &found, &scratch.bucket);
      for (const Neighbor& nb : found) result.push_back(nb.id);
    }
  }
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

std::vector<Neighbor> KnnQueryAtTime(const IndexFramework& index,
                                     const DoorSchedule& schedule,
                                     double time, const Point& q, size_t k) {
  const FloorPlan& plan = index.plan();
  const auto host = index.locator().GetHostPartition(q);
  if (!host.ok() || k == 0) return {};
  const PartitionId v = host.value();
  QueryScratch& scratch = TlsQueryScratch();

  KnnCollector& collector = scratch.collector;
  collector.Reset(k);
  index.objects().bucket(v).NnSearch(plan.partition(v), q, 0.0, &collector,
                                     &scratch.bucket);

  std::vector<double> dist;
  internal::SnapshotDijkstra(index.graph(), schedule, time,
                             SeedsFrom(index, v, q, &scratch), kInvalidId,
                             &dist, nullptr);
  // Visit doors nearest-first so the bound tightens early. (Local buffer:
  // scratch.bucket.cell_order is in use by the nested NnSearch calls.)
  std::vector<std::pair<double, DoorId>> order;
  for (DoorId dj = 0; dj < plan.door_count(); ++dj) {
    if (dist[dj] != kInfDistance) order.push_back({dist[dj], dj});
  }
  std::sort(order.begin(), order.end());
  const DoorPartitionTable& dpt = index.dpt();
  for (const auto& [dj_dist, dj] : order) {
    if (dj_dist > collector.Bound()) break;
    for (PartitionId part : {dpt[dj].part1, dpt[dj].part2}) {
      if (part == kInvalidId) continue;
      const GridBucket& bucket = index.objects().bucket(part);
      if (bucket.size() == 0) continue;
      bucket.NnSearch(plan.partition(part), plan.door(dj).Midpoint(),
                      dj_dist, &collector, &scratch.bucket);
    }
  }
  return collector.Sorted();
}

IndoorPath Pt2PtShortestPathAtTime(const DistanceContext& ctx,
                                   const DoorSchedule& schedule, double time,
                                   const Point& ps, const Point& pt) {
  const FloorPlan& plan = ctx.graph->plan();
  IndoorPath path;
  const auto endpoints = internal::ResolveEndpoints(ctx, ps, pt);
  if (!endpoints.ok()) return path;

  QueryScratch& scratch = TlsQueryScratch();
  const double direct =
      internal::DirectCandidate(ctx, endpoints, ps, pt, &scratch.geo);

  const auto& src_doors = plan.LeaveDoors(endpoints.vs);
  auto& src_leg = scratch.src_leg;
  src_leg.resize(src_doors.size());
  ctx.locator->DistVMany(endpoints.vs, ps, src_doors, &scratch.geo,
                         src_leg.data());
  std::vector<std::pair<DoorId, double>> seeds;
  for (size_t i = 0; i < src_doors.size(); ++i) {
    if (src_leg[i] != kInfDistance) seeds.push_back({src_doors[i], src_leg[i]});
  }
  std::vector<double> dist;
  std::vector<PrevEntry> prev;
  internal::SnapshotDijkstra(*ctx.graph, schedule, time, seeds, kInvalidId,
                             &dist, &prev);

  const auto& dst_doors = plan.EnterDoors(endpoints.vt);
  auto& dst_leg = scratch.dst_leg;
  dst_leg.resize(dst_doors.size());
  ctx.locator->DistVMany(endpoints.vt, pt, dst_doors, &scratch.geo,
                         dst_leg.data());
  DoorId best_door = kInvalidId;
  double best = kInfDistance;
  for (size_t j = 0; j < dst_doors.size(); ++j) {
    const DoorId dt = dst_doors[j];
    if (dist[dt] == kInfDistance) continue;
    const double leg = dst_leg[j];
    if (leg == kInfDistance) continue;
    if (dist[dt] + leg < best) {
      best = dist[dt] + leg;
      best_door = dt;
    }
  }

  if (direct <= best) {
    if (direct == kInfDistance) return path;
    path.length = direct;
    path.partitions = {endpoints.vs};
    path.waypoints = {ps, pt};
    return path;
  }

  path.length = best;
  std::vector<DoorId> doors{best_door};
  std::vector<PartitionId> mid_parts;
  DoorId cur = best_door;
  while (prev[cur].door != kInvalidId) {
    mid_parts.push_back(prev[cur].partition);
    cur = prev[cur].door;
    doors.push_back(cur);
  }
  std::reverse(doors.begin(), doors.end());
  std::reverse(mid_parts.begin(), mid_parts.end());
  path.doors = std::move(doors);
  path.partitions.push_back(endpoints.vs);
  for (PartitionId v : mid_parts) path.partitions.push_back(v);
  path.partitions.push_back(endpoints.vt);
  path.waypoints.push_back(ps);
  for (DoorId d : path.doors) {
    path.waypoints.push_back(plan.door(d).Midpoint());
  }
  path.waypoints.push_back(pt);
  return path;
}

}  // namespace indoor
