#include "core/query/nearest_iterator.h"

namespace indoor {

NearestIterator::NearestIterator(const IndexFramework& index, const Point& q,
                                 size_t initial_k)
    : index_(&index), query_(q), k_(initial_k == 0 ? 1 : initial_k) {
  Refill();
}

void NearestIterator::Refill() {
  cache_ = KnnQuery(*index_, query_, k_);
  if (cache_.size() < k_) exhausted_ = true;
}

bool NearestIterator::HasNext() {
  if (pos_ < cache_.size()) return true;
  if (exhausted_) return false;
  k_ *= 2;
  Refill();
  return pos_ < cache_.size();
}

Neighbor NearestIterator::Next() {
  INDOOR_CHECK(HasNext()) << "NearestIterator exhausted";
  return cache_[pos_++];
}

}  // namespace indoor
