// Incremental nearest-neighbor browsing: objects streamed in increasing
// walking-distance order without fixing k up front (the classic "distance
// browsing" access pattern; useful when a consumer filters results and
// does not know in advance how many neighbors it must inspect).
//
// Implementation: a k-doubling wrapper over Algorithm 6. Each refill
// re-runs the indexed kNN query with twice the k; the kNN prefix property
// (tested in property_test.cc) guarantees already-yielded prefixes stay
// stable. Refills cost O(log n) query runs overall.

#ifndef INDOOR_CORE_QUERY_NEAREST_ITERATOR_H_
#define INDOOR_CORE_QUERY_NEAREST_ITERATOR_H_

#include "core/query/knn_query.h"

namespace indoor {

/// Streams neighbors of a fixed query point, nearest first.
class NearestIterator {
 public:
  /// `initial_k` sizes the first batch; the iterator grows it as needed.
  NearestIterator(const IndexFramework& index, const Point& q,
                  size_t initial_k = 8);

  /// True if another neighbor exists (may trigger a refill).
  bool HasNext();

  /// The next-nearest neighbor. Requires HasNext().
  Neighbor Next();

  /// Number of neighbors yielded so far.
  size_t yielded() const { return pos_; }

 private:
  void Refill();

  const IndexFramework* index_;
  Point query_;
  size_t k_;
  std::vector<Neighbor> cache_;
  size_t pos_ = 0;
  bool exhausted_ = false;  // the store has no more reachable objects
};

}  // namespace indoor

#endif  // INDOOR_CORE_QUERY_NEAREST_ITERATOR_H_
