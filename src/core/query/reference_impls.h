// Reference oracles: the pre-optimization implementations of the hot query
// paths, kept verbatim (per-pair d2dDistance with fresh buffers, per-door
// distV legs, per-object bucket evaluation, nested EnterableParts/LeaveDoors
// edge enumeration). They exist for two purposes:
//
//  * equivalence tests — the optimized paths (batched one-to-many geodesic
//    solves, CSR door graph, QueryScratch reuse) must return EXACTLY equal
//    results (bitwise doubles, identical object sets/order);
//  * benchmarking — the "old" side of bench_pt2pt_hotpath's old-vs-new
//    speedup and allocations-per-query measurements.
//
// Never call these from production code paths; they allocate per query by
// design.

#ifndef INDOOR_CORE_QUERY_REFERENCE_IMPLS_H_
#define INDOOR_CORE_QUERY_REFERENCE_IMPLS_H_

#include <vector>

#include "core/distance/pt2pt_distance.h"
#include "core/index/index_framework.h"
#include "core/query/knn_query.h"
#include "core/query/range_query.h"

namespace indoor {
namespace reference {

/// Algorithm 1 as originally implemented: fresh dist/visited/heap vectors,
/// nested EnterableParts/LeaveDoors expansion (no CSR rows).
double D2dDistance(const DistanceGraph& graph, DoorId ds, DoorId dt);

/// Algorithm 2 as originally implemented: one blind d2dDistance per
/// (leaveable source door, enterable destination door) pair, distV legs
/// recomputed per pair.
double Pt2PtDistanceBasic(const DistanceContext& ctx, const Point& ps,
                          const Point& pt);

/// Algorithm 3 as originally implemented: per-source-door Dijkstra with
/// fresh buffers and per-door distV legs.
double Pt2PtDistanceRefined(const DistanceContext& ctx, const Point& ps,
                            const Point& pt);

/// Algorithm 5 as originally implemented: per-object bucket evaluation
/// (null-scratch RangeSearch) and per-door distV legs.
std::vector<ObjectId> RangeQuery(const IndexFramework& index, const Point& q,
                                 double r, RangeQueryOptions options = {});

/// Algorithm 6 as originally implemented: per-object bucket evaluation
/// (null-scratch NnSearch) and per-door distV legs.
std::vector<Neighbor> KnnQuery(const IndexFramework& index, const Point& q,
                               size_t k, KnnQueryOptions options = {});

}  // namespace reference
}  // namespace indoor

#endif  // INDOOR_CORE_QUERY_REFERENCE_IMPLS_H_
