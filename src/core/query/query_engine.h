// QueryEngine: the library's top-level facade. Owns a floor plan and its
// full indexing framework, and exposes the distance computations and
// distance-aware queries of the paper behind one object.

#ifndef INDOOR_CORE_QUERY_QUERY_ENGINE_H_
#define INDOOR_CORE_QUERY_QUERY_ENGINE_H_

#include <memory>
#include <span>

#include "core/distance/hierarchy_distance.h"
#include "core/distance/matrix_distance.h"
#include "core/distance/shortest_path.h"
#include "core/query/batch_executor.h"
#include "core/query/knn_query.h"
#include "core/query/query_cache.h"
#include "core/query/range_query.h"

namespace indoor {

/// One-stop API over a floor plan: construct with a plan, add objects, ask
/// for distances, paths, range and kNN results.
///
///   QueryEngine engine(MakeRunningExamplePlan());
///   engine.AddObject(room, point);
///   double d = engine.Distance(p, q);
///   auto nearest = engine.Nearest(p, 3);
///
/// Thread-safety: every const method (Distance, DoorDistance,
/// ShortestPath, Range, Nearest, Locate) may be called concurrently from
/// any number of threads once construction and object loading are done —
/// the underlying index is immutable, and per-query mutable state lives in
/// a QueryScratch arena. Callers that pass no scratch get the calling
/// thread's TlsQueryScratch() automatically; callers that manage their own
/// threads may instead pass one QueryScratch per thread explicitly (see
/// query_scratch.h for the ownership contract). Either way the hot query
/// path performs no steady-state heap allocations. AddObject/MoveObject
/// are writes: they require external synchronization and must not overlap
/// any in-flight reader.
class QueryEngine {
 public:
  /// Takes ownership of the plan and builds every index over it.
  explicit QueryEngine(FloorPlan plan, IndexOptions options = {});

  /// Takes ownership of the plan and adopts preloaded index structures
  /// (the `indoor_tool serve --load` / `--load-mmap` cold-start path);
  /// structures absent from `artifacts` are built normally.
  QueryEngine(FloorPlan plan, IndexArtifacts artifacts,
              IndexOptions options = {});

  const FloorPlan& plan() const { return *plan_; }
  const IndexFramework& index() const { return *index_; }
  IndexFramework& index() { return *index_; }

  /// Adds an object into `partition` at `position`. Writes no longer
  /// touch the cross-query cache: geometry entries (distance fields, host
  /// lookups) never depend on objects, and object-dependent result
  /// entries are epoch-versioned per partition — the store bumps the
  /// epochs of the partitions the write touches and stale cached results
  /// are lazily rejected at lookup (see query_cache.h).
  Result<ObjectId> AddObject(PartitionId partition, const Point& position) {
    return index_->objects().Insert(partition, position);
  }

  /// Relocates an object (moving populations); epoch semantics as in
  /// AddObject.
  Status MoveObject(ObjectId id, PartitionId partition,
                    const Point& position) {
    return index_->objects().MoveObject(id, partition, position);
  }

  /// Applies a batch of moves in submission order through the observed
  /// ingest path (per-move capture records + update metrics); stops at the
  /// first failing op and returns its status. Equivalent to calling
  /// MoveObject per op. Like all writes, must not overlap readers.
  Status ApplyMoves(std::span<const MoveOp> moves) {
    return ApplyMoveBatch(*index_, moves);
  }

  /// Minimum indoor walking distance between two positions (exact; reads
  /// the pre-computed Md2d — or, under IndexOptions::use_hierarchy, the
  /// bit-identical hierarchy solver). kInfDistance when disconnected or
  /// not indoors.
  double Distance(const Point& ps, const Point& pt,
                  QueryScratch* scratch = nullptr) const {
    if (!index_->has_flat_matrix()) {
      return Pt2PtDistanceHierarchy(index_->locator(), index_->graph(),
                                    index_->hierarchy_index(), ps, pt,
                                    scratch, index_->query_cache(),
                                    index_->queue_kind());
    }
    return Pt2PtDistanceMatrix(index_->locator(), index_->d2d_matrix(), ps,
                               pt, scratch, index_->query_cache());
  }

  /// Minimum walking distance between two doors.
  double DoorDistance(DoorId ds, DoorId dt) const {
    if (!index_->has_flat_matrix()) {
      return HierarchyDoorDistance(index_->graph(), index_->hierarchy_index(),
                                   ds, dt, nullptr, index_->queue_kind());
    }
    return index_->d2d_matrix().At(ds, dt);
  }

  /// Concrete shortest path between two positions.
  IndoorPath ShortestPath(const Point& ps, const Point& pt,
                          bool expand_waypoints = false) const {
    return Pt2PtShortestPath(index_->distance_context(), ps, pt,
                             expand_waypoints);
  }

  /// Range query Qr(q, r).
  std::vector<ObjectId> Range(const Point& q, double r,
                              RangeQueryOptions options = {},
                              QueryScratch* scratch = nullptr) const {
    return RangeQuery(*index_, q, r, options, scratch);
  }

  /// kNN query, nearest first.
  std::vector<Neighbor> Nearest(const Point& q, size_t k,
                                KnnQueryOptions options = {},
                                QueryScratch* scratch = nullptr) const {
    return KnnQuery(*index_, q, k, options, scratch);
  }

  /// getHostPartition(p), served through the cross-query cache when
  /// enabled.
  Result<PartitionId> Locate(const Point& p) const {
    return CachedHostPartition(index_->query_cache(), index_->locator(), p);
  }

  /// Executes a mixed pt2pt/range/kNN batch: requests are grouped by host
  /// partition (sharing warmed source fields) and fanned across
  /// `options.threads` workers. Results are bit-identical to calling
  /// Distance/Range/Nearest in a sequential loop, in request order. For a
  /// long-lived serving loop prefer constructing one BatchExecutor next
  /// to it (reuses workers and scratches across batches).
  std::vector<QueryResult> RunBatch(std::span<const QueryRequest> requests,
                                    const BatchOptions& options = {}) const {
    return indoor::RunBatch(*index_, requests, options);
  }

 private:
  // unique_ptrs keep the plan's address stable for the index's back
  // references while letting QueryEngine stay movable.
  std::unique_ptr<FloorPlan> plan_;
  std::unique_ptr<IndexFramework> index_;
};

}  // namespace indoor

#endif  // INDOOR_CORE_QUERY_QUERY_ENGINE_H_
