// Temporal extension (the paper's §VII future-work direction, implemented):
// doors may be open only during certain periods, and distance queries take
// a time point, returning the indoor distances valid at that instant.

#ifndef INDOOR_CORE_QUERY_TEMPORAL_H_
#define INDOOR_CORE_QUERY_TEMPORAL_H_

#include <vector>

#include "core/distance/d2d_distance.h"
#include "core/distance/pt2pt_distance.h"

namespace indoor {

/// A half-open time interval [begin, end) in seconds (e.g. seconds of day).
struct TimeInterval {
  double begin = 0.0;
  double end = 0.0;

  bool Contains(double t) const { return t >= begin && t < end; }
};

/// Per-door open schedules. Doors without a schedule are always open.
/// Temporal information lives on edges (= doors), exactly the extension
/// path the paper's doors-as-edges design argues for (§III-C2).
class DoorSchedule {
 public:
  explicit DoorSchedule(size_t door_count)
      : intervals_(door_count), scheduled_(door_count, 0) {}

  /// Replaces door `d`'s schedule. Intervals may be unsorted; overlapping
  /// intervals are permitted and treated as a union.
  void SetOpenIntervals(DoorId d, std::vector<TimeInterval> intervals) {
    INDOOR_CHECK(d < intervals_.size());
    intervals_[d] = std::move(intervals);
    scheduled_[d] = 1;
  }

  /// Marks door `d` permanently closed.
  void Close(DoorId d) { SetOpenIntervals(d, {}); }

  bool IsOpen(DoorId d, double time) const {
    INDOOR_CHECK(d < intervals_.size());
    if (!scheduled_[d]) return true;
    for (const TimeInterval& iv : intervals_[d]) {
      if (iv.Contains(time)) return true;
    }
    return false;
  }

 private:
  std::vector<std::vector<TimeInterval>> intervals_;
  std::vector<char> scheduled_;
};

/// d2dDistance at time `t`: Algorithm 1 over the snapshot graph in which
/// closed doors are removed. kInfDistance when ds is closed at t or dt is
/// unreachable through open doors.
double D2dDistanceAtTime(const DistanceGraph& graph,
                         const DoorSchedule& schedule, double time,
                         DoorId ds, DoorId dt);

/// Position-to-position distance at time `t` (multi-source Dijkstra over
/// the open-door snapshot plus the direct intra-partition candidate).
double Pt2PtDistanceAtTime(const DistanceContext& ctx,
                           const DoorSchedule& schedule, double time,
                           const Point& ps, const Point& pt);

namespace internal {

/// Dijkstra over the time-t snapshot (closed doors removed), seeded with
/// (door, offset) pairs. Stops early when `target` settles (pass
/// kInvalidId to compute all); fills dist (and prev when non-null).
double SnapshotDijkstra(const DistanceGraph& graph,
                        const DoorSchedule& schedule, double time,
                        const std::vector<std::pair<DoorId, double>>& seeds,
                        DoorId target, std::vector<double>* dist,
                        std::vector<PrevEntry>* prev);

}  // namespace internal
}  // namespace indoor

#endif  // INDOOR_CORE_QUERY_TEMPORAL_H_
