// Nearest-neighbor query Qnn(q) (paper §V-A2, Algorithm 6), generalized to
// k >= 1 exactly as the paper's extension describes: a k-element result
// array replaces (nn, distnn), and nnSearch updates it in place.

#ifndef INDOOR_CORE_QUERY_KNN_QUERY_H_
#define INDOOR_CORE_QUERY_KNN_QUERY_H_

#include <vector>

#include "core/index/index_framework.h"

namespace indoor {

struct QueryScratch;

/// Query knobs.
struct KnnQueryOptions {
  /// Use Midx to scan doors nearest-first with early termination; when
  /// false the entire Md2d row is examined (paper Fig. 9's "without d2d
  /// index" configuration).
  bool use_index_matrix = true;
};

/// Executes the kNN query: the k objects with smallest indoor walking
/// distance from q, nearest first (fewer if the building holds fewer
/// reachable objects). Empty when q is not inside any partition. A null
/// `scratch` falls back to the calling thread's TlsQueryScratch().
std::vector<Neighbor> KnnQuery(const IndexFramework& index, const Point& q,
                               size_t k, KnnQueryOptions options = {},
                               QueryScratch* scratch = nullptr);

}  // namespace indoor

#endif  // INDOOR_CORE_QUERY_KNN_QUERY_H_
