// Nearest-neighbor query Qnn(q) (paper §V-A2, Algorithm 6), generalized to
// k >= 1 exactly as the paper's extension describes: a k-element result
// array replaces (nn, distnn), and nnSearch updates it in place.

#ifndef INDOOR_CORE_QUERY_KNN_QUERY_H_
#define INDOOR_CORE_QUERY_KNN_QUERY_H_

#include <vector>

#include "core/index/index_framework.h"

namespace indoor {

struct QueryScratch;

/// Query knobs.
struct KnnQueryOptions {
  /// Use Midx to scan doors nearest-first with early termination; when
  /// false the entire Md2d row is examined (paper Fig. 9's "without d2d
  /// index" configuration).
  bool use_index_matrix = true;
  /// Serve from the approximate tier (core/index/approx_knn.h) when the
  /// framework opted in (IndexOptions::approx_knn) and the embeddings are
  /// fresh; effect-free otherwise. The tier falls back to the exact path
  /// whenever it cannot prove a full answer (stale embeddings, fewer than
  /// k reachable candidates), counted under `knn.approx.exact_fallback`.
  bool use_approx = true;
  /// Per-query candidate over-provisioning override for the approximate
  /// tier: re-rank up to k * factor bound-sorted candidates. 0 inherits
  /// IndexOptions::approx_candidate_factor (benches sweep this without
  /// rebuilding the framework).
  unsigned approx_candidate_factor = 0;
};

/// Executes the kNN query: the k objects with smallest indoor walking
/// distance from q, nearest first (fewer if the building holds fewer
/// reachable objects). Empty when q is not inside any partition. A null
/// `scratch` falls back to the calling thread's TlsQueryScratch().
std::vector<Neighbor> KnnQuery(const IndexFramework& index, const Point& q,
                               size_t k, KnnQueryOptions options = {},
                               QueryScratch* scratch = nullptr);

}  // namespace indoor

#endif  // INDOOR_CORE_QUERY_KNN_QUERY_H_
