// Batched parallel query execution: the serving-side counterpart of the
// cross-query cache (query_cache.h).
//
// A batch of mixed pt2pt / range / kNN requests is executed as follows:
//
//   1. every request's host partition is resolved once up front (through
//      the cache when enabled),
//   2. requests are ordered by (host partition, exact query position), so
//      same-source queries run back to back — the first one warms the
//      partition's source-door field and the rest hit it (and even with
//      the cache off, consecutive same-source geodesic solves reuse the
//      GeodesicScratch single-source cache),
//   3. contiguous same-partition groups are fanned out across a ThreadPool
//      with one long-lived QueryScratch per worker,
//   4. each result lands in the slot of its originating request.
//
// Results are bit-identical to running the same requests through
// QueryEngine::Distance/Range/Nearest in a sequential loop, in any thread
// count and any grouping: per-request computation is untouched, only the
// execution order changes, and no query state is shared beyond the
// thread-safe cache.
//
// Thread-safety: one Run() at a time per executor (it owns the worker
// scratches); different executors over the same index may run
// concurrently. Run() must not overlap index writes.

#ifndef INDOOR_CORE_QUERY_BATCH_EXECUTOR_H_
#define INDOOR_CORE_QUERY_BATCH_EXECUTOR_H_

#include <span>
#include <vector>

#include "core/distance/query_scratch.h"
#include "core/index/index_framework.h"
#include "util/thread_pool.h"

namespace indoor {

/// One distance-aware query of a batch.
struct QueryRequest {
  enum class Kind : uint8_t {
    kDistance,  // pt2pt walking distance a -> b (matrix path)
    kRange,     // objects within `radius` of a
    kKnn,       // `k` nearest objects to a
  };
  Kind kind = Kind::kDistance;
  /// Query position (pt2pt source; range/kNN center).
  Point a{0.0, 0.0};
  /// pt2pt destination (kDistance only).
  Point b{0.0, 0.0};
  double radius = 0.0;
  size_t k = 0;

  static QueryRequest Distance(Point source, Point target) {
    return {.kind = Kind::kDistance, .a = source, .b = target};
  }
  static QueryRequest Range(Point center, double radius) {
    return {.kind = Kind::kRange, .a = center, .radius = radius};
  }
  static QueryRequest Knn(Point center, size_t k) {
    return {.kind = Kind::kKnn, .a = center, .k = k};
  }
};

/// Result slot of one request; only the member matching the request kind
/// is populated.
struct QueryResult {
  double distance = kInfDistance;     // kDistance
  std::vector<ObjectId> ids;          // kRange (ascending, deduplicated)
  std::vector<Neighbor> neighbors;    // kKnn (nearest first)
};

/// Per-run knobs.
struct BatchOptions {
  /// Worker threads (0 = hardware concurrency). Only used by the
  /// QueryEngine::RunBatch convenience wrapper — a BatchExecutor's pool
  /// size is fixed at construction.
  unsigned threads = 0;
  /// Sort requests by (host partition, position) before execution. Off
  /// preserves submission order within each worker's slice; results are
  /// identical either way.
  bool group_by_partition = true;
};

/// Reusable batched runner over one immutable index. Construct once next
/// to the serving loop and feed it batches; workers and scratches persist
/// across Run() calls.
class BatchExecutor {
 public:
  /// `index` must outlive the executor. `threads` = 0 uses hardware
  /// concurrency.
  BatchExecutor(const IndexFramework& index, unsigned threads);

  /// Executes the batch and returns one result per request, in request
  /// order.
  std::vector<QueryResult> Run(std::span<const QueryRequest> requests,
                               const BatchOptions& options = {});

  unsigned thread_count() const { return pool_.thread_count(); }

 private:
  void Execute(const QueryRequest& request, PartitionId host,
               QueryScratch* scratch, QueryResult* result) const;

  /// Execute plus per-query observability (metrics builds only): wraps
  /// the query in a QueryLogScope carrying the batch id and worker index
  /// (suppressing the per-kind scopes inside), and — when the trace
  /// collector is armed — runs it under a QueryTrace offered to the
  /// collector afterwards, so each worker renders as its own track.
  void ExecuteObserved(const QueryRequest& request, PartitionId host,
                       QueryScratch* scratch, QueryResult* result,
                       uint64_t batch_id, unsigned worker,
                       bool collect_trace) const;

  const IndexFramework* index_;
  ThreadPool pool_;
  std::vector<QueryScratch> scratches_;  // one per worker
};

/// One-shot convenience: builds a transient executor with
/// `options.threads` workers and runs the batch through it.
std::vector<QueryResult> RunBatch(const IndexFramework& index,
                                  std::span<const QueryRequest> requests,
                                  const BatchOptions& options = {});

/// The write-side counterpart of Run(): applies a move batch through the
/// observed update-ingest path. The moves go to ObjectStore::ApplyMoves
/// (submission order, stop at first error); when the query log is armed,
/// the batch gets its own batch id from the same sequence as query
/// batches and one kMove record per attempted op (kFlagMoveBatch), so a
/// capture interleaves move batches with query batches in arrival order
/// and replay can reproduce the exact write schedule. Like every store
/// write, calls must be externally serialized and must not overlap any
/// reader (no concurrent Run()).
Status ApplyMoveBatch(IndexFramework& index, std::span<const MoveOp> moves);

}  // namespace indoor

#endif  // INDOOR_CORE_QUERY_BATCH_EXECUTOR_H_
