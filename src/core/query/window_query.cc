#include "core/query/window_query.h"

#include <algorithm>

namespace indoor {
namespace {

/// Visits every (id, position) pair of `bucket` in cells overlapping
/// `window`; `visit(id, inside)` receives whether the position itself is
/// inside. `whole_cell` short-circuits per-object tests for cells fully
/// covered by the window.
template <typename Visit>
void ScanBucket(const GridBucket& bucket, const Rect& window,
                const Visit& visit) {
  for (size_t c = 0; c < bucket.cell_count(); ++c) {
    const auto& cell = bucket.CellContents(c);
    if (cell.empty()) continue;
    const Rect rect = bucket.CellRectAt(c);
    if (!rect.Intersects(window)) continue;
    const bool whole_cell = window.ContainsRect(rect);
    for (const auto& [id, pos] : cell) {
      visit(id, whole_cell || window.Contains(pos));
    }
  }
}

}  // namespace

std::vector<ObjectId> WindowQuery(const IndexFramework& index,
                                  const Rect& window) {
  std::vector<ObjectId> result;
  // Partition candidates via the same R-tree that backs getHostPartition.
  // (Its payload is partition MBRs, so a rect query gives the candidates.)
  for (const Partition& part : index.plan().partitions()) {
    if (!part.footprint().outer().BoundingBox().Intersects(window)) {
      continue;
    }
    const GridBucket& bucket = index.objects().bucket(part.id());
    if (bucket.size() == 0) continue;
    ScanBucket(bucket, window, [&](ObjectId id, bool inside) {
      if (inside) result.push_back(id);
    });
  }
  std::sort(result.begin(), result.end());
  // Overlapping footprints (outdoor, staircase bands) cannot duplicate an
  // object — each object lives in exactly one bucket — so no unique pass.
  return result;
}

size_t WindowCount(const IndexFramework& index, const Rect& window) {
  size_t count = 0;
  for (const Partition& part : index.plan().partitions()) {
    if (!part.footprint().outer().BoundingBox().Intersects(window)) {
      continue;
    }
    const GridBucket& bucket = index.objects().bucket(part.id());
    if (bucket.size() == 0) continue;
    ScanBucket(bucket, window, [&](ObjectId, bool inside) {
      if (inside) ++count;
    });
  }
  return count;
}

}  // namespace indoor
