#include "core/query/query_engine.h"

namespace indoor {

QueryEngine::QueryEngine(FloorPlan plan, IndexOptions options)
    : plan_(std::make_unique<FloorPlan>(std::move(plan))),
      index_(std::make_unique<IndexFramework>(*plan_, options)) {}

QueryEngine::QueryEngine(FloorPlan plan, IndexArtifacts artifacts,
                         IndexOptions options)
    : plan_(std::make_unique<FloorPlan>(std::move(plan))),
      index_(std::make_unique<IndexFramework>(*plan_, std::move(artifacts),
                                              options)) {}

}  // namespace indoor
