#include "core/query/range_query.h"

#include <algorithm>

#include "core/distance/d2d_runner.h"
#include "core/distance/query_scratch.h"
#include "core/query/query_cache.h"
#include "core/query/result_digest.h"
#include "util/metrics.h"
#include "util/query_log.h"

namespace indoor {
namespace {

/// Lines 11-20 of Algorithm 5 for one DPT side (partition + fdv value):
/// whole-partition inclusion when fdv(dj, part) <= r2, else a grid-pruned
/// intra-partition range search anchored at door dj. `found` is a reusable
/// staging buffer for the bucket results. `deps`/`gates` (optional,
/// paired) accumulate the epoch dependency set and the repair budgets of
/// the query's cached result: every partition reached here is recorded,
/// including empty ones — reaching a partition means its population
/// matters, whether or not it currently holds objects. The reach set and
/// the budgets themselves are object-independent (pruning uses only Md2d
/// geometry and r), so a cached result is exactly as valid as the
/// recorded partitions' epochs, and a stale one can be repaired by
/// re-testing just the moved objects against the gates.
void SearchSide(const IndexFramework& index, PartitionId part, double fdv,
                DoorId dj, double r2, BucketScratch* scratch,
                std::vector<Neighbor>* found, std::vector<ObjectId>* result,
                std::vector<PartitionId>* deps,
                std::vector<ResultGate>* gates) {
  if (part == kInvalidId) return;
  if (deps != nullptr) {
    deps->push_back(part);
    gates->push_back({part, dj, r2, fdv});
  }
  // Hotness telemetry: every reached partition is a visit, even an empty
  // one — reaching it means its population matters to this query (the
  // same reasoning the dependency set uses). Settles attributed below.
  INDOOR_METRICS_ONLY(const uint64_t hot_before = scratch->objects_tested;
                      scratch->hot.emplace_back(part, 0);)
  const GridBucket& bucket = index.objects().bucket(part);
  if (bucket.size() == 0) return;
  if (fdv <= r2) {
    INDOOR_COUNTER_INC("index.grid.collect_all");
    bucket.CollectAll(result);
    return;
  }
  found->clear();
  bucket.RangeSearch(index.plan().partition(part),
                     index.plan().door(dj).Midpoint(), r2, found, scratch);
  for (const Neighbor& nb : *found) result->push_back(nb.id);
  INDOOR_METRICS_ONLY(scratch->hot.back().second =
                          static_cast<uint32_t>(scratch->objects_tested -
                                                hot_before);)
}

/// Would a fresh Qr(q, r) admit an object currently at `o`? Evaluates the
/// exact gate expressions of the full search: the host-partition direct
/// search when o lives in `host`, else every gate of o's partition —
/// whole-partition inclusion (fdv <= budget) or the bucket's own
/// single-object admission predicate anchored at the gate door.
bool RangeObjectQualifies(const IndexFramework& index, const Point& q,
                          double r, PartitionId host, const StaleResult& stale,
                          const IndoorObject& o, GeodesicScratch* geo) {
  const FloorPlan& plan = index.plan();
  const ObjectStore& store = index.objects();
  if (o.partition == host &&
      store.bucket(host).WouldAdmit(plan.partition(host), q, r, o.position,
                                    geo)) {
    return true;
  }
  for (const ResultGate& g : stale.gates) {
    if (g.part != o.partition) continue;
    if (g.fdv <= g.budget) return true;
    if (store.bucket(g.part).WouldAdmit(plan.partition(g.part),
                                        plan.door(g.door).Midpoint(), g.budget,
                                        o.position, geo)) {
      return true;
    }
  }
  return false;
}

/// Patches a stale cached range result in place: for every object the
/// change journals name, re-test membership and insert/erase its id,
/// keeping the canonical sorted order. Always succeeds — range membership
/// of unmoved objects cannot change (their gates are object-independent).
void RepairRangeResult(const IndexFramework& index, const Point& q, double r,
                       PartitionId host, StaleResult* stale,
                       GeodesicScratch* geo) {
  const ObjectStore& store = index.objects();
  for (const ObjectId id : stale->changed) {
    const IndoorObject& o = store.object(id);
    const bool now = RangeObjectQualifies(index, q, r, host, *stale, o, geo);
    const auto it = std::lower_bound(stale->ids.begin(), stale->ids.end(), id);
    const bool was = it != stale->ids.end() && *it == id;
    if (now && !was) {
      stale->ids.insert(it, id);
    } else if (!now && was) {
      stale->ids.erase(it);
    }
  }
}

}  // namespace

std::vector<ObjectId> RangeQuery(const IndexFramework& index, const Point& q,
                                 double r, RangeQueryOptions options,
                                 QueryScratch* scratch) {
  INDOOR_LATENCY_SPAN("range", "query.range.latency_ns");
  qlog::QueryLogScope qscope(qlog::RecordKind::kRange, q.x, q.y, 0.0, 0.0, r,
                             0, scratch != nullptr);
  std::vector<ObjectId> result;
  const FloorPlan& plan = index.plan();
  const QueryCache* cache = index.query_cache();
  const auto host = CachedHostPartition(cache, index.locator(), q);
  if (!host.ok() || r < 0) return result;
  const PartitionId v = host.value();
  qscope.SetHost(v);
  // Result kinds keep cached entries of the three door-expansion engines
  // (Midx scan / full-row scan / hierarchy) apart; the repair machinery is
  // engine-independent (gates + intra-partition geometry only).
  const uint8_t result_kind =
      !index.has_flat_matrix() ? 4 : (options.use_index_matrix ? 0 : 2);
  if (cache != nullptr) {
    StaleResult& stale = TlsStaleResult();
    switch (cache->ProbeRangeResult(q, r, result_kind, &result, &stale)) {
      case ResultProbe::kHit:
        INDOOR_HISTOGRAM_RECORD("query.range.results", result.size());
        if (qscope.active()) {
          qscope.SetResult(static_cast<uint32_t>(result.size()),
                           qdigest::RangeDigest(result));
        }
        return result;
      case ResultProbe::kStale: {
        // Patch the cached result instead of re-solving: only the moved
        // objects can change membership.
        QueryScratch& repair_scratch = ResolveQueryScratch(scratch);
        RepairRangeResult(index, q, r, v, &stale, &repair_scratch.geo);
        cache->CommitRepairedRange(q, r, result_kind, stale.ids);
        result = std::move(stale.ids);
        INDOOR_HISTOGRAM_RECORD("query.range.results", result.size());
        if (qscope.active()) {
          qscope.SetResult(static_cast<uint32_t>(result.size()),
                           qdigest::RangeDigest(result));
        }
        return result;
      }
      case ResultProbe::kMiss:
        break;
    }
  }
  scratch = &ResolveQueryScratch(scratch);
  const ScratchDecayGuard decay_guard(scratch);
  std::vector<Neighbor>& found = scratch->neighbors;
  std::vector<PartitionId>* deps = nullptr;
  std::vector<ResultGate>* gates = nullptr;
  if (cache != nullptr) {
    deps = &scratch->result_deps;
    deps->clear();
    deps->push_back(v);  // the host bucket is always examined
    gates = &TlsStaleResult().gates;
    gates->clear();
  }

  // Line 2: search the host partition directly.
  found.clear();
  INDOOR_METRICS_ONLY(
      const uint64_t hot_before = scratch->bucket.objects_tested;
      scratch->bucket.hot.emplace_back(v, 0);)
  {
    INDOOR_TRACE_SPAN("host_search");
    index.objects().bucket(v).RangeSearch(plan.partition(v), q, r, &found,
                                          &scratch->bucket);
  }
  INDOOR_METRICS_ONLY(scratch->bucket.hot.back().second =
                          static_cast<uint32_t>(
                              scratch->bucket.objects_tested - hot_before);)
  for (const Neighbor& nb : found) result.push_back(nb.id);

  const size_t n = plan.door_count();
  const DoorPartitionTable& dpt = index.dpt();

  // Lines 3-20: expand through every leaveable door of the host partition.
  // All q-to-door legs come from one batched geodesic solve rooted at q.
  const auto& src_doors = plan.LeaveDoors(v);
  auto& src_leg = scratch->src_leg;
  src_leg.resize(src_doors.size());
  CachedFieldLegs(cache, index.locator(), FieldKind::kLeaveFrom, v, q,
                  src_doors, &scratch->geo, src_leg.data());
  if (!index.has_flat_matrix()) {
    // Hierarchy engine: the flat scans above enumerate exactly the doors
    // dj with Md2d[di][dj] <= r1 and hand each an r2 = r1 - Md2d[di][dj];
    // the final result is sorted + deduplicated, so only that SET of
    // (door, r2) side-searches matters, not its order. Two loss-free ways
    // to enumerate it without Md2d:
    //  * di interior to cell c and r1 strictly below its escape radius:
    //    every door within r1 is provably a member of c, so the cell
    //    block row IS the r1-ball (entries bit-equal to Md2d).
    //  * otherwise a bounded Dijkstra from di: settled distances are
    //    bit-equal to Md2d (settle-prefix), the fixed radius r1 makes the
    //    push prune loss-free, and the run stops at the first settle
    //    beyond r1 (everything later is farther still).
    const HierarchyIndex& hier = index.hierarchy_index();
    INDOOR_METRICS_ONLY(uint64_t block_scans = 0; uint64_t runs = 0;)
    INDOOR_TRACE_SPAN("door_expansion");
    for (size_t i = 0; i < src_doors.size(); ++i) {
      const DoorId di = src_doors[i];
      const double r1 = r - src_leg[i];
      if (r1 < 0) continue;
      const auto cells = hier.CellsOfDoor(di);
      bool served = false;
      if (cells[1] == HierarchyIndex::kNone) {
        const uint32_t c = cells[0];
        const uint32_t local = hier.LocalIndex(c, di);
        if (r1 < hier.EscapeRadius(c, local)) {
          const double* brow = hier.BlockRow(c, local);
          const auto members = hier.CellMembers(c);
          INDOOR_METRICS_ONLY(++block_scans;)
          for (size_t j = 0; j < members.size(); ++j) {
            if (brow[j] > r1) continue;
            const DoorId dj = members[j];
            const double r2 = r1 - brow[j];
            SearchSide(index, dpt[dj].part1, dpt[dj].dist1, dj, r2,
                       &scratch->bucket, &found, &result, deps, gates);
            SearchSide(index, dpt[dj].part2, dpt[dj].dist2, dj, r2,
                       &scratch->bucket, &found, &result, deps, gates);
          }
          served = true;
        }
      }
      if (!served) {
        INDOOR_METRICS_ONLY(++runs;)
        RunDoorDijkstra(
            index.graph(), di, &scratch->door, index.queue_kind(), nullptr,
            [&](DoorId dj, double d) {
              if (d > r1) return false;
              const double r2 = r1 - d;
              SearchSide(index, dpt[dj].part1, dpt[dj].dist1, dj, r2,
                         &scratch->bucket, &found, &result, deps, gates);
              SearchSide(index, dpt[dj].part2, dpt[dj].dist2, dj, r2,
                         &scratch->bucket, &found, &result, deps, gates);
              return true;
            },
            [&](double cand) { return cand <= r1; });
      }
    }
    INDOOR_METRICS_ONLY(
        INDOOR_COUNTER_ADD("index.hier.range.block_scans", block_scans);
        INDOOR_COUNTER_ADD("index.hier.range.runs", runs);
        FlushBucketStats(&scratch->bucket);
        index.hotness().FlushVisits(&scratch->bucket.hot);)

    std::sort(result.begin(), result.end());
    result.erase(std::unique(result.begin(), result.end()), result.end());
    if (cache != nullptr) {
      cache->InsertRangeResult(q, r, result_kind, *deps, *gates, result);
    }
    INDOOR_HISTOGRAM_RECORD("query.range.results", result.size());
    if (qscope.active()) {
      qscope.SetResult(static_cast<uint32_t>(result.size()),
                       qdigest::RangeDigest(result));
    }
    return result;
  }
  const DistanceMatrix& md2d = index.d2d_matrix();
  INDOOR_METRICS_ONLY(uint64_t md2d_rows = 0; uint64_t midx_rows = 0;
                      uint64_t entries = 0;)
  {
    INDOOR_TRACE_SPAN("door_expansion");
    for (size_t i = 0; i < src_doors.size(); ++i) {
      const DoorId di = src_doors[i];
      const double r1 = r - src_leg[i];
      if (r1 < 0) continue;
      const double* row = md2d.Row(di);
      INDOOR_METRICS_ONLY(++md2d_rows;)
      if (options.use_index_matrix) {
        const DoorId* order = index.index_matrix().Row(di);
        INDOOR_METRICS_ONLY(++midx_rows;)
        for (size_t j = 0; j < n; ++j) {
          const DoorId dj = order[j];
          INDOOR_METRICS_ONLY(++entries;)
          if (row[dj] > r1) break;  // nearest-first: nothing further qualifies
          const double r2 = r1 - row[dj];
          SearchSide(index, dpt[dj].part1, dpt[dj].dist1, dj, r2,
                     &scratch->bucket, &found, &result, deps, gates);
          SearchSide(index, dpt[dj].part2, dpt[dj].dist2, dj, r2,
                     &scratch->bucket, &found, &result, deps, gates);
        }
      } else {
        // Without Midx the whole Md2d row must be examined. The landmark
        // lower bound (never above the exact row value) skips entries the
        // row comparison would reject anyway, saving the row read —
        // results are identical with landmarks attached or not.
        const LandmarkIndex* const lm = index.landmarks();
        uint64_t lm_prunes = 0;
        INDOOR_METRICS_ONLY(entries += n;)
        for (DoorId dj = 0; dj < n; ++dj) {
          if (lm != nullptr && lm->LowerBound(di, dj) > r1) {
            ++lm_prunes;
            continue;
          }
          if (row[dj] > r1) continue;
          const double r2 = r1 - row[dj];
          SearchSide(index, dpt[dj].part1, dpt[dj].dist1, dj, r2,
                     &scratch->bucket, &found, &result, deps, gates);
          SearchSide(index, dpt[dj].part2, dpt[dj].dist2, dj, r2,
                     &scratch->bucket, &found, &result, deps, gates);
        }
        if (lm_prunes != 0) {
          INDOOR_COUNTER_ADD("distance.dijkstra.prunes.landmark", lm_prunes);
        }
      }
    }
  }
  INDOOR_METRICS_ONLY(
      INDOOR_COUNTER_ADD("index.md2d.row_fetches", md2d_rows);
      INDOOR_COUNTER_ADD("index.midx.row_fetches", midx_rows);
      INDOOR_COUNTER_ADD("index.scan.entries", entries);
      FlushBucketStats(&scratch->bucket);
      index.hotness().FlushVisits(&scratch->bucket.hot);)

  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  if (cache != nullptr) {
    cache->InsertRangeResult(q, r, result_kind, *deps, *gates, result);
  }
  INDOOR_HISTOGRAM_RECORD("query.range.results", result.size());
  if (qscope.active()) {
    qscope.SetResult(static_cast<uint32_t>(result.size()),
                     qdigest::RangeDigest(result));
  }
  return result;
}

}  // namespace indoor
