#include "core/query/workload_replay.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "core/query/batch_executor.h"
#include "core/query/result_digest.h"
#include "util/timer.h"

namespace indoor {
namespace {

/// Bitwise double equality — inf == inf, and no tolerance: replay is
/// exact or it is a finding.
bool BitEqual(double a, double b) {
  uint64_t ab = 0, bb = 0;
  std::memcpy(&ab, &a, sizeof(ab));
  std::memcpy(&bb, &b, sizeof(bb));
  return ab == bb;
}

Result<QueryRequest> RequestFromRecord(const qlog::QueryLogRecord& record) {
  switch (static_cast<qlog::RecordKind>(record.kind)) {
    case qlog::RecordKind::kDistance:
      return QueryRequest::Distance(Point(record.ax, record.ay),
                                    Point(record.bx, record.by));
    case qlog::RecordKind::kRange:
      return QueryRequest::Range(Point(record.ax, record.ay), record.radius);
    case qlog::RecordKind::kKnn:
      return QueryRequest::Knn(Point(record.ax, record.ay), record.k);
    case qlog::RecordKind::kMove:
      break;  // moves replay through ApplyMoves, never as a QueryRequest
  }
  return Status::InvalidArgument("capture record seq " +
                                 std::to_string(record.seq) +
                                 " has unknown query kind " +
                                 std::to_string(record.kind));
}

/// Finds `name` in a sorted-by-name histogram list (nullptr if absent).
const metrics::HistogramSnapshot* FindHistogram(
    const std::vector<metrics::HistogramSnapshot>& list,
    const std::string& name) {
  for (const auto& hist : list) {
    if (hist.name == name) return &hist;
  }
  return nullptr;
}

}  // namespace

Result<ReplayReport> ReplayWorkload(IndexFramework& index,
                                    const qlog::QueryLogCapture& capture,
                                    const ReplayOptions& options) {
  ReplayReport report;
  report.captured_delta = qlog::ParseSnapshotText(capture.metrics_text);

  // Arrival order: the file holds per-thread flush order, seq restores
  // the global order queries entered the system in.
  std::vector<qlog::QueryLogRecord> records = capture.records;
  std::sort(records.begin(), records.end(),
            [](const qlog::QueryLogRecord& a, const qlog::QueryLogRecord& b) {
              return a.seq < b.seq;
            });
  report.records = records.size();

  // Consecutive records sharing a batch id replay as one BatchExecutor
  // run — the captured batch boundaries. (Unbatched records, id 0, fold
  // into runs too: grouping never changes results, only scheduling.)
  std::vector<std::pair<size_t, size_t>> batches;
  for (size_t begin = 0; begin < records.size();) {
    size_t end = begin + 1;
    while (end < records.size() &&
           records[end].batch_id == records[begin].batch_id) {
      ++end;
    }
    batches.emplace_back(begin, end);
    begin = end;
  }
  report.batches = batches.size();

  BatchExecutor executor(index, options.threads);
  const metrics::RegistrySnapshot before =
      metrics::MetricsRegistry::Global().Snapshot();
  const auto replay_start = std::chrono::steady_clock::now();
  const uint64_t capture_start_us =
      records.empty() ? 0 : records.front().start_us;

  WallTimer timer;
  std::vector<QueryRequest> requests;
  for (const auto& [begin, end] : batches) {
    if (options.speed > 0.0) {
      // Pace this batch at the capture's offset from its own start,
      // scaled by 1/speed.
      const double target_us =
          static_cast<double>(records[begin].start_us - capture_start_us) /
          options.speed;
      std::this_thread::sleep_until(
          replay_start +
          std::chrono::microseconds(static_cast<int64_t>(target_us)));
    }
    if (static_cast<qlog::RecordKind>(records[begin].kind) ==
        qlog::RecordKind::kMove) {
      // A captured move batch: re-apply the writes at their original
      // position in the schedule, then digest-verify each op against its
      // record (applied ops carry MoveDigest, a rejected op count 0).
      std::vector<MoveOp> moves;
      moves.reserve(end - begin);
      for (size_t i = begin; i < end; ++i) {
        const qlog::QueryLogRecord& record = records[i];
        if (static_cast<qlog::RecordKind>(record.kind) !=
            qlog::RecordKind::kMove) {
          return Status::InvalidArgument(
              "capture batch " + std::to_string(record.batch_id) +
              " mixes move and query records");
        }
        moves.push_back(MoveOp{record.k, record.host,
                               Point(record.ax, record.ay)});
      }
      size_t applied = 0;
      // The returned status is intentionally not propagated: a capture
      // may legitimately end a batch with a rejected op, and any
      // divergence shows up as a digest mismatch below.
      (void)index.objects().ApplyMoves(moves, &applied);
      for (size_t i = begin; i < end; ++i) {
        const qlog::QueryLogRecord& record = records[i];
        const MoveOp& op = moves[i - begin];
        const bool ok = i - begin < applied;
        const uint32_t count = ok ? 1u : 0u;
        const double value =
            ok ? qdigest::MoveDigest(op.id, op.partition, op.position.x,
                                     op.position.y)
               : 0.0;
        ++report.move_records;
        if (count == record.result_count &&
            BitEqual(value, record.result_value)) {
          ++report.matched;
          continue;
        }
        ++report.mismatched;
        if (report.mismatches.size() < options.max_mismatches) {
          report.mismatches.push_back(ReplayMismatch{
              record.seq, record.kind, record.result_count, count,
              record.result_value, value});
        }
      }
      continue;
    }
    requests.clear();
    for (size_t i = begin; i < end; ++i) {
      INDOOR_ASSIGN_OR_RETURN(QueryRequest request,
                              RequestFromRecord(records[i]));
      requests.push_back(request);
    }
    const std::vector<QueryResult> results = executor.Run(requests);
    for (size_t i = begin; i < end; ++i) {
      const qlog::QueryLogRecord& record = records[i];
      const QueryRequest& request = requests[i - begin];
      const QueryResult& result = results[i - begin];
      const uint32_t count = qdigest::DigestCount(request, result);
      const double value = qdigest::DigestValue(request, result);
      if (count == record.result_count &&
          BitEqual(value, record.result_value)) {
        ++report.matched;
        continue;
      }
      ++report.mismatched;
      if (report.mismatches.size() < options.max_mismatches) {
        report.mismatches.push_back(ReplayMismatch{
            record.seq, record.kind, record.result_count, count,
            record.result_value, value});
      }
    }
  }
  report.wall_ms = timer.ElapsedMillis();
  report.replayed_delta =
      metrics::MetricsRegistry::Global().Snapshot().DeltaSince(before);
  return report;
}

void WriteReplayReport(const ReplayReport& report, std::FILE* out) {
  std::fprintf(out,
               "replayed %llu records in %llu batches, %.1f ms (%.0f QPS)\n",
               static_cast<unsigned long long>(report.records),
               static_cast<unsigned long long>(report.batches),
               report.wall_ms,
               report.wall_ms > 0.0
                   ? static_cast<double>(report.records) /
                         (report.wall_ms / 1000.0)
                   : 0.0);
  if (report.move_records > 0) {
    std::fprintf(out, "  including %llu re-applied object moves\n",
                 static_cast<unsigned long long>(report.move_records));
  }
  if (report.AllMatched()) {
    std::fprintf(out,
                 "results: %llu/%llu bitwise-identical to the capture\n",
                 static_cast<unsigned long long>(report.matched),
                 static_cast<unsigned long long>(report.records));
  } else {
    std::fprintf(out, "results: %llu MISMATCHED (%llu matched)\n",
                 static_cast<unsigned long long>(report.mismatched),
                 static_cast<unsigned long long>(report.matched));
    for (const ReplayMismatch& mm : report.mismatches) {
      std::fprintf(out,
                   "  seq %llu kind %u: captured count=%u value=%.17g, "
                   "replayed count=%u value=%.17g\n",
                   static_cast<unsigned long long>(mm.seq), mm.kind,
                   mm.captured_count, mm.captured_value, mm.replayed_count,
                   mm.replayed_value);
    }
  }

  if (report.captured_delta.counters.empty() &&
      report.captured_delta.histograms.empty()) {
    return;  // capture carried no metrics trailer (e.g. a JSONL log)
  }
  std::fprintf(out, "\nwork done, captured -> replayed:\n");
  // Counters: walk the union of both sorted lists.
  size_t i = 0, j = 0;
  const auto& cap = report.captured_delta.counters;
  const auto& rep = report.replayed_delta.counters;
  while (i < cap.size() || j < rep.size()) {
    if (j >= rep.size() || (i < cap.size() && cap[i].first < rep[j].first)) {
      std::fprintf(out, "  %-36s %12llu -> %12s\n", cap[i].first.c_str(),
                   static_cast<unsigned long long>(cap[i].second), "-");
      ++i;
    } else if (i >= cap.size() || rep[j].first < cap[i].first) {
      std::fprintf(out, "  %-36s %12s -> %12llu\n", rep[j].first.c_str(), "-",
                   static_cast<unsigned long long>(rep[j].second));
      ++j;
    } else {
      std::fprintf(out, "  %-36s %12llu -> %12llu%s\n", cap[i].first.c_str(),
                   static_cast<unsigned long long>(cap[i].second),
                   static_cast<unsigned long long>(rep[j].second),
                   cap[i].second == rep[j].second ? "" : "   *");
      ++i;
      ++j;
    }
  }
  for (const auto& hist : report.captured_delta.histograms) {
    const metrics::HistogramSnapshot* replayed =
        FindHistogram(report.replayed_delta.histograms, hist.name);
    if (replayed == nullptr) continue;
    std::fprintf(out,
                 "  %-36s count %llu -> %llu, p99 %.0f -> %.0f\n",
                 hist.name.c_str(),
                 static_cast<unsigned long long>(hist.count),
                 static_cast<unsigned long long>(replayed->count),
                 hist.Percentile(0.99), replayed->Percentile(0.99));
  }
}

}  // namespace indoor
