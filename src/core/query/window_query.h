// Window query: all objects whose position falls inside an axis-aligned
// rectangle — the classic viewport retrieval (a map UI shows a window of
// the floor plan and needs the objects in it). Purely geometric, no
// walking distances involved: partition candidates come from the R-tree,
// objects from the grid buckets' cells overlapping the window.

#ifndef INDOOR_CORE_QUERY_WINDOW_QUERY_H_
#define INDOOR_CORE_QUERY_WINDOW_QUERY_H_

#include <vector>

#include "core/index/index_framework.h"

namespace indoor {

/// Ids of all stored objects positioned within `window` (closed bounds),
/// sorted. Objects of every partition kind are reported, including
/// outdoor ones.
std::vector<ObjectId> WindowQuery(const IndexFramework& index,
                                  const Rect& window);

/// Count-only variant (cheaper: whole cells inside the window are counted
/// without per-object tests).
size_t WindowCount(const IndexFramework& index, const Rect& window);

}  // namespace indoor

#endif  // INDOOR_CORE_QUERY_WINDOW_QUERY_H_
