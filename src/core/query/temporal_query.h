// Time-parameterized distance-aware queries: range, kNN, and shortest
// paths evaluated against the door schedule's snapshot at a time point.
//
// The pre-computed Md2d/Midx describe the all-doors-open building; when
// doors follow schedules (paper §VII future work), a query at time t runs
// one snapshot Dijkstra from the query position instead of reading the
// matrix, then reuses the same DPT + grid-bucket machinery as Algorithms
// 5-6. bench_ablation_temporal quantifies what the precomputation buys.

#ifndef INDOOR_CORE_QUERY_TEMPORAL_QUERY_H_
#define INDOOR_CORE_QUERY_TEMPORAL_QUERY_H_

#include "core/distance/shortest_path.h"
#include "core/index/index_framework.h"
#include "core/query/temporal.h"

namespace indoor {

/// Range query Qr(q, r) at time `t`: objects within walking distance r of
/// q using only doors open at t. Sorted unique ids.
std::vector<ObjectId> RangeQueryAtTime(const IndexFramework& index,
                                       const DoorSchedule& schedule,
                                       double time, const Point& q,
                                       double r);

/// kNN query at time `t`, nearest first.
std::vector<Neighbor> KnnQueryAtTime(const IndexFramework& index,
                                     const DoorSchedule& schedule,
                                     double time, const Point& q, size_t k);

/// Shortest path at time `t` (crosses only doors open at t).
IndoorPath Pt2PtShortestPathAtTime(const DistanceContext& ctx,
                                   const DoorSchedule& schedule, double time,
                                   const Point& ps, const Point& pt);

}  // namespace indoor

#endif  // INDOOR_CORE_QUERY_TEMPORAL_QUERY_H_
