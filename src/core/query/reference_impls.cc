#include "core/query/reference_impls.h"

#include <algorithm>
#include <queue>

namespace indoor {
namespace reference {
namespace {

/// One DPT side of Algorithm 5 (historical form: null-scratch RangeSearch,
/// fresh result buffer per call).
void RangeSearchSide(const IndexFramework& index, PartitionId part,
                     double fdv, DoorId dj, double r2,
                     std::vector<ObjectId>* result) {
  if (part == kInvalidId) return;
  const GridBucket& bucket = index.objects().bucket(part);
  if (bucket.size() == 0) return;
  if (fdv <= r2) {
    bucket.CollectAll(result);
    return;
  }
  std::vector<Neighbor> found;
  bucket.RangeSearch(index.plan().partition(part),
                     index.plan().door(dj).Midpoint(), r2, &found);
  for (const Neighbor& nb : found) result->push_back(nb.id);
}

/// One DPT side of Algorithm 6 (historical form: null-scratch NnSearch).
void NnSearchSide(const IndexFramework& index, PartitionId part, DoorId dj,
                  double r2, KnnCollector* collector) {
  if (part == kInvalidId) return;
  const GridBucket& bucket = index.objects().bucket(part);
  if (bucket.size() == 0) return;
  bucket.NnSearch(index.plan().partition(part),
                  index.plan().door(dj).Midpoint(), r2, collector);
}

}  // namespace

double D2dDistance(const DistanceGraph& graph, DoorId ds, DoorId dt) {
  const FloorPlan& plan = graph.plan();
  const size_t n = plan.door_count();
  INDOOR_CHECK(ds < n);
  INDOOR_CHECK(dt < n);

  std::vector<double> dist(n, kInfDistance);
  std::vector<char> visited(n, 0);
  using Entry = std::pair<double, DoorId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dist[ds] = 0.0;
  heap.push({0.0, ds});

  while (!heap.empty()) {
    const auto [d, di] = heap.top();
    heap.pop();
    if (visited[di]) continue;
    visited[di] = 1;
    if (di == dt) return d;
    for (PartitionId v : plan.EnterableParts(di)) {
      for (DoorId dj : plan.LeaveDoors(v)) {
        if (visited[dj]) continue;
        const double w = graph.Fd2d(v, di, dj);
        if (w == kInfDistance) continue;
        if (dist[di] + w < dist[dj]) {
          dist[dj] = dist[di] + w;
          heap.push({dist[dj], dj});
        }
      }
    }
  }
  return dist[dt];
}

double Pt2PtDistanceBasic(const DistanceContext& ctx, const Point& ps,
                          const Point& pt) {
  const FloorPlan& plan = ctx.graph->plan();
  const internal::Endpoints endpoints =
      internal::ResolveEndpoints(ctx, ps, pt);
  if (!endpoints.ok()) return kInfDistance;

  double dist = internal::DirectCandidate(ctx, endpoints, ps, pt);
  // Algorithm 2: every (leaveable source door, enterable destination door)
  // pair via a blind d2dDistance call.
  for (DoorId ds : plan.LeaveDoors(endpoints.vs)) {
    const double dist1 = ctx.locator->DistV(endpoints.vs, ps, ds);
    if (dist1 == kInfDistance) continue;
    for (DoorId dt : plan.EnterDoors(endpoints.vt)) {
      const double dist2 = ctx.locator->DistV(endpoints.vt, pt, dt);
      if (dist2 == kInfDistance) continue;
      const double d2d = D2dDistance(*ctx.graph, ds, dt);
      if (d2d == kInfDistance) continue;
      dist = std::min(dist, dist1 + d2d + dist2);
    }
  }
  return dist;
}

double Pt2PtDistanceRefined(const DistanceContext& ctx, const Point& ps,
                            const Point& pt) {
  const FloorPlan& plan = ctx.graph->plan();
  const internal::Endpoints endpoints =
      internal::ResolveEndpoints(ctx, ps, pt);
  if (!endpoints.ok()) return kInfDistance;

  // Lines 3-8: source doors with dead ends removed; destination doors.
  const std::vector<DoorId> doors_s =
      internal::PrunedSourceDoors(plan, endpoints.vs, endpoints.vt);
  const std::vector<DoorId>& doors_t = plan.EnterDoors(endpoints.vt);

  double dist_m = internal::DirectCandidate(ctx, endpoints, ps, pt);

  const size_t n = plan.door_count();
  std::vector<double> dist(n);
  std::vector<char> visited(n);

  for (DoorId ds : doors_s) {
    const double src_leg = ctx.locator->DistV(endpoints.vs, ps, ds);
    if (src_leg == kInfDistance) continue;

    // Lines 11-14: destination doors that can still beat dist_m.
    std::vector<DoorId> doors;
    for (DoorId dt : doors_t) {
      const double dst_leg = ctx.locator->DistV(endpoints.vt, pt, dt);
      if (dst_leg != kInfDistance && src_leg + dst_leg < dist_m) {
        doors.push_back(dt);
      }
    }
    if (doors.empty()) continue;

    // Lines 15-36: one Dijkstra from ds, terminating once every door in
    // `doors` has been settled.
    dist.assign(n, kInfDistance);
    visited.assign(n, 0);
    using Entry = std::pair<double, DoorId>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    dist[ds] = 0.0;
    heap.push({0.0, ds});

    while (!heap.empty()) {
      const auto [d, di] = heap.top();
      heap.pop();
      if (visited[di]) continue;
      visited[di] = 1;

      const auto it = std::find(doors.begin(), doors.end(), di);
      if (it != doors.end()) {
        doors.erase(it);
        const double dst_leg = ctx.locator->DistV(endpoints.vt, pt, di);
        if (src_leg + d + dst_leg < dist_m) {
          dist_m = src_leg + d + dst_leg;
        }
        if (doors.empty()) break;
      }

      for (PartitionId v : plan.EnterableParts(di)) {
        for (DoorId dj : plan.LeaveDoors(v)) {
          if (visited[dj]) continue;
          const double w = ctx.graph->Fd2d(v, di, dj);
          if (w == kInfDistance) continue;
          if (d + w < dist[dj]) {
            dist[dj] = d + w;
            heap.push({dist[dj], dj});
          }
        }
      }
    }
  }
  return dist_m;
}

std::vector<ObjectId> RangeQuery(const IndexFramework& index, const Point& q,
                                 double r, RangeQueryOptions options) {
  std::vector<ObjectId> result;
  const FloorPlan& plan = index.plan();
  const auto host = index.locator().GetHostPartition(q);
  if (!host.ok() || r < 0) return result;
  const PartitionId v = host.value();

  // Line 2: search the host partition directly.
  {
    std::vector<Neighbor> found;
    index.objects().bucket(v).RangeSearch(plan.partition(v), q, r, &found);
    for (const Neighbor& nb : found) result.push_back(nb.id);
  }

  const size_t n = plan.door_count();
  const DistanceMatrix& md2d = index.d2d_matrix();
  const DoorPartitionTable& dpt = index.dpt();

  // Lines 3-20: expand through every leaveable door of the host partition.
  for (DoorId di : plan.LeaveDoors(v)) {
    const double r1 = r - index.locator().DistV(v, q, di);
    if (r1 < 0) continue;
    const double* row = md2d.Row(di);
    if (options.use_index_matrix) {
      const DoorId* order = index.index_matrix().Row(di);
      for (size_t j = 0; j < n; ++j) {
        const DoorId dj = order[j];
        if (row[dj] > r1) break;  // nearest-first: nothing further qualifies
        const double r2 = r1 - row[dj];
        RangeSearchSide(index, dpt[dj].part1, dpt[dj].dist1, dj, r2,
                        &result);
        RangeSearchSide(index, dpt[dj].part2, dpt[dj].dist2, dj, r2,
                        &result);
      }
    } else {
      // Without Midx the whole Md2d row must be examined.
      for (DoorId dj = 0; dj < n; ++dj) {
        if (row[dj] > r1) continue;
        const double r2 = r1 - row[dj];
        RangeSearchSide(index, dpt[dj].part1, dpt[dj].dist1, dj, r2,
                        &result);
        RangeSearchSide(index, dpt[dj].part2, dpt[dj].dist2, dj, r2,
                        &result);
      }
    }
  }

  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

std::vector<Neighbor> KnnQuery(const IndexFramework& index, const Point& q,
                               size_t k, KnnQueryOptions options) {
  const FloorPlan& plan = index.plan();
  const auto host = index.locator().GetHostPartition(q);
  if (!host.ok() || k == 0) return {};
  const PartitionId v = host.value();

  KnnCollector collector(k);
  // Line 3: search the host partition directly.
  index.objects().bucket(v).NnSearch(plan.partition(v), q, /*extra=*/0.0,
                                     &collector);

  const size_t n = plan.door_count();
  const DistanceMatrix& md2d = index.d2d_matrix();
  const DoorPartitionTable& dpt = index.dpt();

  // Lines 4-19: expand through every leaveable door of the host partition.
  for (DoorId di : plan.LeaveDoors(v)) {
    const double r1 = index.locator().DistV(v, q, di);
    if (r1 == kInfDistance) continue;
    const double* row = md2d.Row(di);
    if (options.use_index_matrix) {
      const DoorId* order = index.index_matrix().Row(di);
      for (size_t j = 0; j < n; ++j) {
        const DoorId dj = order[j];
        if (r1 + row[dj] > collector.Bound()) break;
        const double r2 = r1 + row[dj];
        NnSearchSide(index, dpt[dj].part1, dj, r2, &collector);
        NnSearchSide(index, dpt[dj].part2, dj, r2, &collector);
      }
    } else {
      for (DoorId dj = 0; dj < n; ++dj) {
        if (r1 + row[dj] > collector.Bound()) continue;
        const double r2 = r1 + row[dj];
        NnSearchSide(index, dpt[dj].part1, dj, r2, &collector);
        NnSearchSide(index, dpt[dj].part2, dj, r2, &collector);
      }
    }
  }
  return collector.Sorted();
}

}  // namespace reference
}  // namespace indoor
