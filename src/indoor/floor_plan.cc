#include "indoor/floor_plan.h"

#include <algorithm>

namespace indoor {

bool FloorPlan::Touches(DoorId d, PartitionId v) const {
  const auto& doors = TouchingDoors(v);
  return std::find(doors.begin(), doors.end(), d) != doors.end();
}

bool FloorPlan::Allows(DoorId d, PartitionId from, PartitionId to) const {
  for (const DoorConnection& c : D2P(d)) {
    if (c.from == from && c.to == to) return true;
  }
  return false;
}

std::pair<PartitionId, PartitionId> FloorPlan::ConnectedPair(
    DoorId d) const {
  const auto& conns = D2P(d);
  INDOOR_CHECK(!conns.empty());
  PartitionId a = conns[0].from;
  PartitionId b = conns[0].to;
  if (a > b) std::swap(a, b);
  return {a, b};
}

int FloorPlan::FloorCount() const {
  int lo = 0, hi = 0;
  bool seen = false;
  for (const Partition& p : partitions_) {
    if (p.IsOutdoor()) continue;
    if (!seen) {
      lo = hi = p.floor();
      seen = true;
    } else {
      lo = std::min(lo, p.floor());
      hi = std::max(hi, p.floor());
    }
  }
  return seen ? hi - lo + 1 : 0;
}

}  // namespace indoor
