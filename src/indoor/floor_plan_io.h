// Plain-text serialization of floor plans. A small line-oriented format so
// plans can be versioned, diffed, and shipped with examples:
//
//   # comment
//   partition <name> <kind> <floor> <metric_scale> <x0> <y0> <x1> <y1> ...
//   obstacle <partition_index> <x0> <y0> <x1> <y1> ...
//   door <name> <ax> <ay> <bx> <by>
//   conn <door_index> <from_partition> <to_partition>
//
// Partition/door indices are densely assigned in file order. Names are
// whitespace-free tokens. Kind is one of room|hallway|staircase|outdoor.

#ifndef INDOOR_INDOOR_FLOOR_PLAN_IO_H_
#define INDOOR_INDOOR_FLOOR_PLAN_IO_H_

#include <string>

#include "indoor/floor_plan.h"

namespace indoor {

/// Parses a floor plan from text. Returns ParseError with line information
/// on malformed input, or the builder's validation error.
Result<FloorPlan> ParseFloorPlan(const std::string& text);

/// Serializes `plan` to the text format (round-trips via ParseFloorPlan).
std::string SerializeFloorPlan(const FloorPlan& plan);

/// Loads a floor plan from a file.
Result<FloorPlan> LoadFloorPlan(const std::string& path);

/// Writes a floor plan to a file.
Status SaveFloorPlan(const FloorPlan& plan, const std::string& path);

}  // namespace indoor

#endif  // INDOOR_INDOOR_FLOOR_PLAN_IO_H_
