// FloorPlanBuilder: the only way to construct a FloorPlan. Accumulates
// partitions, doors, and D2P connections, then validates the whole topology
// in Build().

#ifndef INDOOR_INDOOR_FLOOR_PLAN_BUILDER_H_
#define INDOOR_INDOOR_FLOOR_PLAN_BUILDER_H_

#include <string>
#include <vector>

#include "indoor/floor_plan.h"

namespace indoor {

/// Builder with deferred validation. Ids are handed out densely in call
/// order; geometry and topology are checked in Build().
class FloorPlanBuilder {
 public:
  /// Adds a partition with a rectangular footprint and no obstacles.
  PartitionId AddPartition(std::string name, PartitionKind kind, int floor,
                           const Rect& footprint, double metric_scale = 1.0);

  /// Adds a partition with an arbitrary footprint (possibly with obstacles).
  PartitionId AddPartition(std::string name, PartitionKind kind, int floor,
                           ObstructedRegion footprint,
                           double metric_scale = 1.0);

  /// Adds a door with explicit wall-segment geometry. Connections are added
  /// separately via AddConnection / helpers below.
  DoorId AddDoor(std::string name, const Segment& geometry);

  /// Declares that door `d` permits movement `from` -> `to` (one D2P pair).
  FloorPlanBuilder& AddConnection(DoorId d, PartitionId from, PartitionId to);

  /// Convenience: door + bidirectional connection between `a` and `b`.
  DoorId AddBidirectionalDoor(std::string name, const Segment& geometry,
                              PartitionId a, PartitionId b);

  /// Convenience: door + unidirectional connection `from` -> `to`.
  DoorId AddUnidirectionalDoor(std::string name, const Segment& geometry,
                               PartitionId from, PartitionId to);

  /// Validates and assembles the FloorPlan. Checks (with precise errors):
  ///  * every door has 1 or 2 connections;
  ///  * a door's connections span exactly two distinct partitions, and two
  ///    connections must be mutually inverse (paper's stipulation that a
  ///    door always connects exactly two partitions, fn. 1);
  ///  * connection endpoints are valid partition ids;
  ///  * the door midpoint lies within (the closed footprint of) every
  ///    non-outdoor partition it connects;
  ///  * duplicate connections are rejected.
  Result<FloorPlan> Build() &&;

 private:
  struct PendingDoor {
    std::string name;
    Segment geometry;
  };

  std::vector<Partition> partitions_;
  std::vector<PendingDoor> doors_;
  std::vector<std::vector<DoorConnection>> d2p_;
};

}  // namespace indoor

#endif  // INDOOR_INDOOR_FLOOR_PLAN_BUILDER_H_
