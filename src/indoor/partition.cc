#include "indoor/partition.h"

namespace indoor {

const char* PartitionKindName(PartitionKind kind) {
  switch (kind) {
    case PartitionKind::kRoom:
      return "room";
    case PartitionKind::kHallway:
      return "hallway";
    case PartitionKind::kStaircase:
      return "staircase";
    case PartitionKind::kOutdoor:
      return "outdoor";
  }
  return "unknown";
}

}  // namespace indoor
