#include "indoor/sample_plans.h"

#include "indoor/floor_plan_builder.h"

namespace indoor {
namespace {

ObstructedRegion RegionWithObstacles(const Rect& outer,
                                     const std::vector<Rect>& obstacles) {
  std::vector<Polygon> obs;
  obs.reserve(obstacles.size());
  for (const Rect& r : obstacles) obs.push_back(Polygon::FromRect(r));
  auto region = ObstructedRegion::Create(Polygon::FromRect(outer),
                                         std::move(obs));
  INDOOR_CHECK(region.ok()) << region.status().ToString();
  return std::move(region).value();
}

}  // namespace

FloorPlan MakeRunningExamplePlan(RunningExampleIds* ids) {
  FloorPlanBuilder b;
  RunningExampleIds out;

  out.v0 = b.AddPartition("outdoor", PartitionKind::kOutdoor, 0,
                          Rect(-5, -5, 37, 15));
  // Floor 1: hallway v10 with rooms below (v11, v12, v13) and above (v14).
  out.v10 = b.AddPartition("v10", PartitionKind::kHallway, 1,
                           Rect(0, 4, 12, 6));
  out.v11 = b.AddPartition("v11", PartitionKind::kRoom, 1, Rect(0, 0, 4, 4));
  out.v12 = b.AddPartition("v12", PartitionKind::kRoom, 1, Rect(4, 0, 8, 4));
  out.v13 = b.AddPartition("v13", PartitionKind::kRoom, 1, Rect(8, 0, 12, 4));
  out.v14 = b.AddPartition("v14", PartitionKind::kRoom, 1, Rect(0, 6, 6, 10));
  // Floor 2: one large partition v20 with an obstacle, plus rooms v21..v23.
  out.v20 = b.AddPartition(
      "v20", PartitionKind::kHallway, 2,
      RegionWithObstacles(Rect(20, 0, 28, 8), {Rect(23, 2, 25.5, 7.2)}));
  out.v21 = b.AddPartition("v21", PartitionKind::kRoom, 2,
                           Rect(28, 0, 32, 8));
  out.v22 = b.AddPartition("v22", PartitionKind::kRoom, 2,
                           Rect(20, 8, 24, 12));
  out.v23 = b.AddPartition("v23", PartitionKind::kRoom, 2,
                           Rect(24, 8, 28, 12));
  // Staircase flight between the floors, flattened: flat door-to-door
  // length 8 m, actual stair walking length 10 m -> scale 1.25.
  out.v50 = b.AddPartition("v50", PartitionKind::kStaircase, 1,
                           Rect(12, 4, 20, 6), /*metric_scale=*/1.25);

  out.d1 = b.AddBidirectionalDoor("d1", Segment({0, 4.8}, {0, 5.2}),
                                  out.v0, out.v10);
  out.d11 = b.AddBidirectionalDoor("d11", Segment({1.8, 4}, {2.2, 4}),
                                   out.v11, out.v10);
  out.d12 = b.AddUnidirectionalDoor("d12", Segment({4.8, 4}, {5.2, 4}),
                                    out.v12, out.v10);
  out.d13 = b.AddBidirectionalDoor("d13", Segment({9.8, 4}, {10.2, 4}),
                                   out.v13, out.v10);
  out.d14 = b.AddBidirectionalDoor("d14", Segment({2.8, 6}, {3.2, 6}),
                                   out.v14, out.v10);
  out.d15 = b.AddUnidirectionalDoor("d15", Segment({8, 0.8}, {8, 1.2}),
                                    out.v13, out.v12);
  out.d16 = b.AddBidirectionalDoor("d16", Segment({12, 4.8}, {12, 5.2}),
                                   out.v10, out.v50);
  out.d2 = b.AddBidirectionalDoor("d2", Segment({20, 4.8}, {20, 5.2}),
                                  out.v50, out.v20);
  out.d21 = b.AddBidirectionalDoor("d21", Segment({28, 1.8}, {28, 2.2}),
                                   out.v20, out.v21);
  out.d22 = b.AddBidirectionalDoor("d22", Segment({21.8, 8}, {22.2, 8}),
                                   out.v20, out.v22);
  out.d23 = b.AddBidirectionalDoor("d23", Segment({25.8, 8}, {26.2, 8}),
                                   out.v20, out.v23);
  out.d24 = b.AddBidirectionalDoor("d24", Segment({28, 5.8}, {28, 6.2}),
                                   out.v20, out.v21);

  auto plan = std::move(b).Build();
  INDOOR_CHECK(plan.ok()) << plan.status().ToString();
  if (ids != nullptr) *ids = out;
  return std::move(plan).value();
}

FloorPlan MakeObstacleExamplePlan(ObstacleExampleIds* ids) {
  FloorPlanBuilder b;
  ObstacleExampleIds out;

  out.outdoor = b.AddPartition("outdoor", PartitionKind::kOutdoor, 0,
                               Rect(-2, -2, 14, 12));
  out.room1 = b.AddPartition("room1", PartitionKind::kRoom, 1,
                             Rect(0, 6, 12, 10));
  // Serpentine obstacle course: slabs alternately flush with the top and
  // bottom walls force a long weave for intra-room2 travel.
  out.room2 = b.AddPartition(
      "room2", PartitionKind::kRoom, 1,
      RegionWithObstacles(Rect(0, 0, 12, 6),
                          {Rect(2, 0.2, 3, 6), Rect(4.5, 0, 5.5, 5.8),
                           Rect(7, 0.2, 8, 6), Rect(9.5, 0, 10.5, 5.8)}));

  out.d6 = b.AddBidirectionalDoor("d6", Segment({0, 5.3}, {0, 5.7}),
                                  out.outdoor, out.room2);
  out.d7 = b.AddBidirectionalDoor("d7", Segment({0.3, 6}, {0.7, 6}),
                                  out.room2, out.room1);
  out.d8 = b.AddBidirectionalDoor("d8", Segment({11.3, 6}, {11.7, 6}),
                                  out.room2, out.room1);
  out.d9 = b.AddBidirectionalDoor("d9", Segment({12, 5.3}, {12, 5.7}),
                                  out.room2, out.outdoor);
  out.p = Point(0.5, 5.5);
  out.q = Point(11.5, 5.5);

  auto plan = std::move(b).Build();
  INDOOR_CHECK(plan.ok()) << plan.status().ToString();
  if (ids != nullptr) *ids = out;
  return std::move(plan).value();
}

}  // namespace indoor
