#include "indoor/door.h"

// Door is header-only today; this TU anchors the module in the library.
