#include "indoor/floor_plan_builder.h"

#include <algorithm>
#include <string>

namespace indoor {
namespace {

std::string DoorRef(DoorId d, const std::string& name) {
  return "door " + std::to_string(d) + " ('" + name + "')";
}

}  // namespace

PartitionId FloorPlanBuilder::AddPartition(std::string name,
                                           PartitionKind kind, int floor,
                                           const Rect& footprint,
                                           double metric_scale) {
  return AddPartition(std::move(name), kind, floor,
                      ObstructedRegion::FromPolygon(Polygon::FromRect(footprint)),
                      metric_scale);
}

PartitionId FloorPlanBuilder::AddPartition(std::string name,
                                           PartitionKind kind, int floor,
                                           ObstructedRegion footprint,
                                           double metric_scale) {
  const PartitionId id = static_cast<PartitionId>(partitions_.size());
  partitions_.emplace_back(id, std::move(name), kind, floor,
                           std::move(footprint), metric_scale);
  return id;
}

DoorId FloorPlanBuilder::AddDoor(std::string name, const Segment& geometry) {
  const DoorId id = static_cast<DoorId>(doors_.size());
  doors_.push_back({std::move(name), geometry});
  d2p_.emplace_back();
  return id;
}

FloorPlanBuilder& FloorPlanBuilder::AddConnection(DoorId d, PartitionId from,
                                                  PartitionId to) {
  INDOOR_CHECK(d < doors_.size()) << "AddConnection: unknown door id" << d;
  d2p_[d].push_back({from, to});
  return *this;
}

DoorId FloorPlanBuilder::AddBidirectionalDoor(std::string name,
                                              const Segment& geometry,
                                              PartitionId a, PartitionId b) {
  const DoorId d = AddDoor(std::move(name), geometry);
  AddConnection(d, a, b);
  AddConnection(d, b, a);
  return d;
}

DoorId FloorPlanBuilder::AddUnidirectionalDoor(std::string name,
                                               const Segment& geometry,
                                               PartitionId from,
                                               PartitionId to) {
  const DoorId d = AddDoor(std::move(name), geometry);
  AddConnection(d, from, to);
  return d;
}

Result<FloorPlan> FloorPlanBuilder::Build() && {
  const size_t num_parts = partitions_.size();
  const size_t num_doors = doors_.size();

  for (DoorId d = 0; d < num_doors; ++d) {
    const auto& conns = d2p_[d];
    const std::string ref = DoorRef(d, doors_[d].name);
    if (conns.empty()) {
      return Status::InvalidArgument(ref + " has no connections");
    }
    if (conns.size() > 2) {
      return Status::InvalidArgument(
          ref + " has more than two connections; split it into multiple "
                "doors, each connecting two partitions (paper fn. 1)");
    }
    for (const DoorConnection& c : conns) {
      if (c.from >= num_parts || c.to >= num_parts) {
        return Status::InvalidArgument(ref +
                                       " references an unknown partition");
      }
      if (c.from == c.to) {
        return Status::InvalidArgument(ref +
                                       " connects a partition to itself");
      }
    }
    if (conns.size() == 2) {
      if (conns[0] == conns[1]) {
        return Status::InvalidArgument(ref + " has a duplicate connection");
      }
      if (conns[0].from != conns[1].to || conns[0].to != conns[1].from) {
        return Status::InvalidArgument(
            ref + " connects more than two partitions");
      }
    }
    // Geometric sanity: the door midpoint must lie in every non-outdoor
    // partition it connects (doors sit on shared walls, and closed
    // containment admits boundary points).
    const Point mid = doors_[d].geometry.Midpoint();
    const auto [a, b] = [&conns] {
      PartitionId x = conns[0].from, y = conns[0].to;
      if (x > y) std::swap(x, y);
      return std::pair<PartitionId, PartitionId>(x, y);
    }();
    for (PartitionId v : {a, b}) {
      const Partition& part = partitions_[v];
      if (!part.IsOutdoor() && !part.Contains(mid)) {
        return Status::InvalidArgument(
            ref + " midpoint is not on partition '" + part.name() +
            "' (id " + std::to_string(v) + ")");
      }
    }
  }

  FloorPlan plan;
  plan.partitions_ = std::move(partitions_);
  plan.doors_.reserve(num_doors);
  for (DoorId d = 0; d < num_doors; ++d) {
    plan.doors_.emplace_back(d, std::move(doors_[d].name),
                             doors_[d].geometry);
  }
  plan.d2p_ = std::move(d2p_);

  // Derive D2P projections and P2D mappings.
  plan.enterable_parts_.assign(num_doors, {});
  plan.leaveable_parts_.assign(num_doors, {});
  plan.enter_doors_.assign(num_parts, {});
  plan.leave_doors_.assign(num_parts, {});
  plan.touching_doors_.assign(num_parts, {});
  for (DoorId d = 0; d < num_doors; ++d) {
    for (const DoorConnection& c : plan.d2p_[d]) {
      auto& enterable = plan.enterable_parts_[d];
      if (std::find(enterable.begin(), enterable.end(), c.to) ==
          enterable.end()) {
        enterable.push_back(c.to);
      }
      auto& leaveable = plan.leaveable_parts_[d];
      if (std::find(leaveable.begin(), leaveable.end(), c.from) ==
          leaveable.end()) {
        leaveable.push_back(c.from);
      }
      auto& enter = plan.enter_doors_[c.to];
      if (std::find(enter.begin(), enter.end(), d) == enter.end()) {
        enter.push_back(d);
      }
      auto& leave = plan.leave_doors_[c.from];
      if (std::find(leave.begin(), leave.end(), d) == leave.end()) {
        leave.push_back(d);
      }
    }
    const auto [a, b] = [&plan, d] {
      PartitionId x = plan.d2p_[d][0].from, y = plan.d2p_[d][0].to;
      if (x > y) std::swap(x, y);
      return std::pair<PartitionId, PartitionId>(x, y);
    }();
    plan.touching_doors_[a].push_back(d);
    plan.touching_doors_[b].push_back(d);
  }
  for (auto& doors : plan.enter_doors_) std::sort(doors.begin(), doors.end());
  for (auto& doors : plan.leave_doors_) std::sort(doors.begin(), doors.end());
  for (auto& doors : plan.touching_doors_) {
    std::sort(doors.begin(), doors.end());
    doors.erase(std::unique(doors.begin(), doors.end()), doors.end());
  }
  return plan;
}

}  // namespace indoor
