// Doors: the connections between partitions (paper §III-A). A door's
// geometry is the wall segment it occupies; all door-related distances use
// the door's midpoint (paper footnote 3).

#ifndef INDOOR_INDOOR_DOOR_H_
#define INDOOR_INDOOR_DOOR_H_

#include <string>

#include "geometry/segment.h"
#include "indoor/types.h"

namespace indoor {

/// A door (or hatch, escape window, security gate...) between two partitions.
/// Directionality is not stored here; it is defined by which ordered
/// partition pairs appear in the floor plan's D2P mapping.
class Door {
 public:
  Door(DoorId id, std::string name, Segment geometry)
      : id_(id), name_(std::move(name)), geometry_(geometry) {}

  DoorId id() const { return id_; }
  const std::string& name() const { return name_; }
  const Segment& geometry() const { return geometry_; }

  /// The point used for every door-related distance.
  Point Midpoint() const { return geometry_.Midpoint(); }

 private:
  DoorId id_;
  std::string name_;
  Segment geometry_;
};

}  // namespace indoor

#endif  // INDOOR_INDOOR_DOOR_H_
