// Identifier types shared across the indoor model.

#ifndef INDOOR_INDOOR_TYPES_H_
#define INDOOR_INDOOR_TYPES_H_

#include <cstdint>
#include <limits>

namespace indoor {

/// Dense 0-based door identifier (index into FloorPlan::doors()).
using DoorId = uint32_t;

/// Dense 0-based partition identifier (index into FloorPlan::partitions()).
using PartitionId = uint32_t;

/// Dense 0-based identifier of an indoor object (POI or moving entity).
using ObjectId = uint32_t;

/// Sentinel for "no id".
inline constexpr uint32_t kInvalidId =
    std::numeric_limits<uint32_t>::max();

}  // namespace indoor

#endif  // INDOOR_INDOOR_TYPES_H_
