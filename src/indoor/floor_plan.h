// FloorPlan: the validated topology of an indoor space — partitions, doors,
// and the fundamental mapping D2P (paper §III-A, Eq. 1) from which the
// derived mappings D2P⊐/D2P⊏ (Eqs. 2–3) and P2D⊐/P2D⊏ (Eqs. 4–5) follow.

#ifndef INDOOR_INDOOR_FLOOR_PLAN_H_
#define INDOOR_INDOOR_FLOOR_PLAN_H_

#include <vector>

#include "indoor/door.h"
#include "indoor/partition.h"
#include "util/result.h"

namespace indoor {

/// One ordered connection of D2P(d): "one can move from `from` to `to`
/// through door d".
struct DoorConnection {
  PartitionId from = kInvalidId;
  PartitionId to = kInvalidId;

  bool operator==(const DoorConnection& o) const {
    return from == o.from && to == o.to;
  }
};

/// Immutable, validated indoor topology. Construct via FloorPlanBuilder
/// (floor_plan_builder.h) or LoadFloorPlan (floor_plan_io.h).
class FloorPlan {
 public:
  const std::vector<Partition>& partitions() const { return partitions_; }
  const std::vector<Door>& doors() const { return doors_; }

  size_t partition_count() const { return partitions_.size(); }
  size_t door_count() const { return doors_.size(); }

  const Partition& partition(PartitionId id) const {
    INDOOR_CHECK(id < partitions_.size()) << "bad partition id" << id;
    return partitions_[id];
  }
  const Door& door(DoorId id) const {
    INDOOR_CHECK(id < doors_.size()) << "bad door id" << id;
    return doors_[id];
  }

  // --- The fundamental mapping D2P and its derivations (paper §III-A) ---

  /// D2P(d): the ordered partition pairs door `d` permits movement between.
  /// Size 1 (unidirectional) or 2 (bidirectional).
  const std::vector<DoorConnection>& D2P(DoorId d) const {
    INDOOR_CHECK(d < d2p_.size());
    return d2p_[d];
  }

  /// D2P⊐(d) = π2(D2P(d)): partitions one can ENTER through `d`.
  const std::vector<PartitionId>& EnterableParts(DoorId d) const {
    INDOOR_CHECK(d < enterable_parts_.size());
    return enterable_parts_[d];
  }

  /// D2P⊏(d) = π1(D2P(d)): partitions one can LEAVE through `d`.
  const std::vector<PartitionId>& LeaveableParts(DoorId d) const {
    INDOOR_CHECK(d < leaveable_parts_.size());
    return leaveable_parts_[d];
  }

  /// P2D⊐(v): doors through which one can enter partition `v`.
  const std::vector<DoorId>& EnterDoors(PartitionId v) const {
    INDOOR_CHECK(v < enter_doors_.size());
    return enter_doors_[v];
  }

  /// P2D⊏(v): doors through which one can leave partition `v`.
  const std::vector<DoorId>& LeaveDoors(PartitionId v) const {
    INDOOR_CHECK(v < leave_doors_.size());
    return leave_doors_[v];
  }

  /// P2D(v) = P2D⊐(v) ∪ P2D⊏(v): all doors touching partition `v`.
  const std::vector<DoorId>& TouchingDoors(PartitionId v) const {
    INDOOR_CHECK(v < touching_doors_.size());
    return touching_doors_[v];
  }

  /// True if door `d` touches partition `v`.
  bool Touches(DoorId d, PartitionId v) const;

  /// |D2P(d)| == 2.
  bool IsBidirectional(DoorId d) const { return D2P(d).size() == 2; }

  /// True if one may move through `d` from `from` to `to`.
  bool Allows(DoorId d, PartitionId from, PartitionId to) const;

  /// The two distinct partitions door `d` connects (unordered).
  std::pair<PartitionId, PartitionId> ConnectedPair(DoorId d) const;

  /// Number of floors spanned (max floor - min floor + 1, outdoor ignored).
  int FloorCount() const;

 private:
  friend class FloorPlanBuilder;
  FloorPlan() = default;

  std::vector<Partition> partitions_;
  std::vector<Door> doors_;
  std::vector<std::vector<DoorConnection>> d2p_;       // per door
  std::vector<std::vector<PartitionId>> enterable_parts_;  // per door
  std::vector<std::vector<PartitionId>> leaveable_parts_;  // per door
  std::vector<std::vector<DoorId>> enter_doors_;       // per partition
  std::vector<std::vector<DoorId>> leave_doors_;       // per partition
  std::vector<std::vector<DoorId>> touching_doors_;    // per partition
};

}  // namespace indoor

#endif  // INDOOR_INDOOR_FLOOR_PLAN_H_
