// Indoor partitions: "a smallest piece of independent space that is
// connected to other partitions by one or more doors" (paper §III) — a room,
// a hallway, a staircase, or the special outdoor partition.

#ifndef INDOOR_INDOOR_PARTITION_H_
#define INDOOR_INDOOR_PARTITION_H_

#include <string>
#include <utility>

#include "geometry/visibility_graph.h"
#include "indoor/types.h"

namespace indoor {

/// Semantic kind of a partition.
enum class PartitionKind {
  kRoom,
  kHallway,
  /// A staircase flight modeled as a virtual room with two doors whose
  /// intra-partition distances carry the actual stair walking length
  /// (paper §VI-A: multi-floor buildings are flattened this way).
  kStaircase,
  /// All of outdoor space, regarded as one special partition (paper fn. 1).
  kOutdoor,
};

const char* PartitionKindName(PartitionKind kind);

/// A partition: footprint (possibly with obstacles), semantic kind, floor
/// number, and a metric scale.
///
/// `metric_scale` multiplies every intra-partition geometric distance. It is
/// 1 for ordinary partitions; for a flattened staircase flight it is
/// (actual walking length) / (flat footprint length between its doors), so
/// fd2d/fdv/distV all report walking distances consistently.
class Partition {
 public:
  Partition(PartitionId id, std::string name, PartitionKind kind,
            int floor, ObstructedRegion footprint, double metric_scale = 1.0)
      : id_(id),
        name_(std::move(name)),
        kind_(kind),
        floor_(floor),
        footprint_(std::move(footprint)),
        metric_scale_(metric_scale) {
    INDOOR_CHECK(metric_scale_ > 0.0) << "metric scale must be positive";
  }

  PartitionId id() const { return id_; }
  const std::string& name() const { return name_; }
  PartitionKind kind() const { return kind_; }
  int floor() const { return floor_; }
  double metric_scale() const { return metric_scale_; }
  const ObstructedRegion& footprint() const { return footprint_; }

  bool IsOutdoor() const { return kind_ == PartitionKind::kOutdoor; }

  /// Closed containment in the free space of the footprint.
  bool Contains(const Point& p) const { return footprint_.Contains(p); }

  /// Intra-partition walking distance between two points (obstructed where
  /// the partition has obstacles), scaled by metric_scale. A null `scratch`
  /// falls back to the calling thread's scratch.
  double IntraDistance(const Point& a, const Point& b,
                       GeodesicScratch* scratch = nullptr) const {
    const double d = footprint_.Distance(a, b, scratch);
    return d == kInfDistance ? kInfDistance : d * metric_scale_;
  }

  /// One-to-many IntraDistance: out[i] is EXACTLY the value
  /// IntraDistance(p, targets[i]) would return, but all targets share a
  /// single geodesic solve (see ObstructedRegion::DistancesToMany).
  void IntraDistancesToMany(const Point& p, std::span<const Point> targets,
                            GeodesicScratch* scratch, double* out) const {
    footprint_.DistancesToMany(p, targets, scratch, out);
    for (size_t i = 0; i < targets.size(); ++i) {
      if (out[i] != kInfDistance) out[i] *= metric_scale_;
    }
  }

  /// Longest intra-partition walking distance from `p` to any point of the
  /// partition; backs fdv (paper §III-C1 item 4).
  double MaxDistanceFrom(const Point& p) const {
    return footprint_.MaxDistanceFrom(p) * metric_scale_;
  }

 private:
  PartitionId id_;
  std::string name_;
  PartitionKind kind_;
  int floor_;
  ObstructedRegion footprint_;
  double metric_scale_;
};

}  // namespace indoor

#endif  // INDOOR_INDOOR_PARTITION_H_
