#include "indoor/floor_plan_io.h"

#include <chrono>
#include <fstream>
#include <sstream>

#include "indoor/floor_plan_builder.h"
#include "util/metrics.h"
#include "util/string_util.h"

namespace indoor {
namespace {

Status LineError(size_t line_no, const std::string& message) {
  return Status::ParseError("line " + std::to_string(line_no) + ": " +
                            message);
}

bool ParseKind(std::string_view token, PartitionKind* out) {
  if (token == "room") {
    *out = PartitionKind::kRoom;
  } else if (token == "hallway") {
    *out = PartitionKind::kHallway;
  } else if (token == "staircase") {
    *out = PartitionKind::kStaircase;
  } else if (token == "outdoor") {
    *out = PartitionKind::kOutdoor;
  } else {
    return false;
  }
  return true;
}

/// Parses an even-length tail of coordinates into points.
Status ParsePoints(const std::vector<std::string>& tokens, size_t begin,
                   size_t line_no, std::vector<Point>* out) {
  if ((tokens.size() - begin) % 2 != 0) {
    return LineError(line_no, "odd number of coordinates");
  }
  for (size_t i = begin; i < tokens.size(); i += 2) {
    double x, y;
    if (!ParseDouble(tokens[i], &x) || !ParseDouble(tokens[i + 1], &y)) {
      return LineError(line_no, "bad coordinate '" + tokens[i] + " " +
                                    tokens[i + 1] + "'");
    }
    out->push_back({x, y});
  }
  return Status::OK();
}

struct StagedPartition {
  std::string name;
  PartitionKind kind;
  int floor;
  double scale;
  std::vector<Point> ring;
  std::vector<std::vector<Point>> obstacles;
};

struct StagedConn {
  uint32_t door;
  uint32_t from;
  uint32_t to;
};

}  // namespace

Result<FloorPlan> ParseFloorPlan(const std::string& text) {
  std::vector<StagedPartition> partitions;
  std::vector<std::pair<std::string, Segment>> doors;
  std::vector<StagedConn> conns;

  std::istringstream stream(text);
  std::string raw;
  size_t line_no = 0;
  while (std::getline(stream, raw)) {
    ++line_no;
    const std::string line{StripWhitespace(raw)};
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> tokens;
    for (const std::string& t : Split(line, ' ')) {
      if (!StripWhitespace(t).empty()) tokens.emplace_back(StripWhitespace(t));
    }
    const std::string& cmd = tokens[0];

    if (cmd == "partition") {
      if (tokens.size() < 11) {
        return LineError(line_no,
                         "partition needs name kind floor scale and a ring "
                         "of >= 3 points");
      }
      StagedPartition part;
      part.name = tokens[1];
      if (!ParseKind(tokens[2], &part.kind)) {
        return LineError(line_no, "unknown partition kind '" + tokens[2] +
                                      "'");
      }
      double floor_val;
      if (!ParseDouble(tokens[3], &floor_val) ||
          floor_val != static_cast<int>(floor_val)) {
        return LineError(line_no, "bad floor '" + tokens[3] + "'");
      }
      part.floor = static_cast<int>(floor_val);
      if (!ParseDouble(tokens[4], &part.scale) || part.scale <= 0.0) {
        return LineError(line_no, "bad metric scale '" + tokens[4] + "'");
      }
      INDOOR_RETURN_NOT_OK(ParsePoints(tokens, 5, line_no, &part.ring));
      partitions.push_back(std::move(part));
    } else if (cmd == "obstacle") {
      uint32_t pid;
      if (tokens.size() < 8 || !ParseUint32(tokens[1], &pid)) {
        return LineError(line_no,
                         "obstacle needs a partition index and >= 3 points");
      }
      if (pid >= partitions.size()) {
        return LineError(line_no, "obstacle references unknown partition " +
                                      tokens[1]);
      }
      std::vector<Point> ring;
      INDOOR_RETURN_NOT_OK(ParsePoints(tokens, 2, line_no, &ring));
      partitions[pid].obstacles.push_back(std::move(ring));
    } else if (cmd == "door") {
      if (tokens.size() != 6) {
        return LineError(line_no, "door needs name ax ay bx by");
      }
      std::vector<Point> pts;
      INDOOR_RETURN_NOT_OK(ParsePoints(tokens, 2, line_no, &pts));
      doors.emplace_back(tokens[1], Segment(pts[0], pts[1]));
    } else if (cmd == "conn") {
      StagedConn conn;
      if (tokens.size() != 4 || !ParseUint32(tokens[1], &conn.door) ||
          !ParseUint32(tokens[2], &conn.from) ||
          !ParseUint32(tokens[3], &conn.to)) {
        return LineError(line_no, "conn needs door from to indices");
      }
      if (conn.door >= doors.size()) {
        return LineError(line_no,
                         "conn references unknown door " + tokens[1]);
      }
      conns.push_back(conn);
    } else {
      return LineError(line_no, "unknown directive '" + cmd + "'");
    }
  }

  FloorPlanBuilder builder;
  for (StagedPartition& part : partitions) {
    auto outer = Polygon::Create(std::move(part.ring));
    if (!outer.ok()) {
      return Status::ParseError("partition '" + part.name +
                                "': " + outer.status().message());
    }
    std::vector<Polygon> obstacles;
    for (std::vector<Point>& ring : part.obstacles) {
      auto obs = Polygon::Create(std::move(ring));
      if (!obs.ok()) {
        return Status::ParseError("obstacle in '" + part.name +
                                  "': " + obs.status().message());
      }
      obstacles.push_back(std::move(obs).value());
    }
    auto region =
        ObstructedRegion::Create(std::move(outer).value(), std::move(obstacles));
    if (!region.ok()) {
      return Status::ParseError("partition '" + part.name +
                                "': " + region.status().message());
    }
    builder.AddPartition(std::move(part.name), part.kind, part.floor,
                         std::move(region).value(), part.scale);
  }
  for (auto& [name, seg] : doors) {
    builder.AddDoor(std::move(name), seg);
  }
  for (const StagedConn& conn : conns) {
    builder.AddConnection(conn.door, conn.from, conn.to);
  }
  return std::move(builder).Build();
}

std::string SerializeFloorPlan(const FloorPlan& plan) {
  std::ostringstream out;
  out.precision(17);  // exact double round-trip
  out << "# indoor floor plan: " << plan.partition_count()
      << " partitions, " << plan.door_count() << " doors\n";
  for (const Partition& part : plan.partitions()) {
    out << "partition " << part.name() << " "
        << PartitionKindName(part.kind()) << " " << part.floor() << " "
        << part.metric_scale();
    for (const Point& v : part.footprint().outer().vertices()) {
      out << " " << v.x << " " << v.y;
    }
    out << "\n";
    for (const Polygon& obs : part.footprint().obstacles()) {
      out << "obstacle " << part.id();
      for (const Point& v : obs.vertices()) {
        out << " " << v.x << " " << v.y;
      }
      out << "\n";
    }
  }
  for (const Door& door : plan.doors()) {
    const Segment& s = door.geometry();
    out << "door " << door.name() << " " << s.a.x << " " << s.a.y << " "
        << s.b.x << " " << s.b.y << "\n";
  }
  for (const Door& door : plan.doors()) {
    for (const DoorConnection& c : plan.D2P(door.id())) {
      out << "conn " << door.id() << " " << c.from << " " << c.to << "\n";
    }
  }
  return out.str();
}

Result<FloorPlan> LoadFloorPlan(const std::string& path) {
  INDOOR_METRICS_ONLY(const auto t0 = std::chrono::steady_clock::now();)
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto plan = ParseFloorPlan(buffer.str());
  INDOOR_METRICS_ONLY(
      const double load_ms =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count() *
          1e3;
      INDOOR_GAUGE_SET("load.plan_ms", load_ms);)
  return plan;
}

Status SaveFloorPlan(const FloorPlan& plan, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  out << SerializeFloorPlan(plan);
  if (!out) {
    return Status::IOError("failed writing '" + path + "'");
  }
  return Status::OK();
}

}  // namespace indoor
