// Concrete floor plans used throughout tests, examples, and the Fig. 3/4
// matrix reproduction: the paper's Fig. 1 running example and the Fig. 5
// obstacle scenario.

#ifndef INDOOR_INDOOR_SAMPLE_PLANS_H_
#define INDOOR_INDOOR_SAMPLE_PLANS_H_

#include "indoor/floor_plan.h"

namespace indoor {

/// Ids of the named entities in the running-example plan, mirroring the
/// paper's Fig. 1 labels (v10..v14, v20..v23, staircase v50, outdoor v0;
/// doors d1, d2, d11..d16, d21..d24).
struct RunningExampleIds {
  PartitionId v0;   // outdoor
  PartitionId v10;  // floor-1 hallway
  PartitionId v11;
  PartitionId v12;
  PartitionId v13;
  PartitionId v14;
  PartitionId v20;  // floor-2 hallway (contains an obstacle)
  PartitionId v21;
  PartitionId v22;
  PartitionId v23;
  PartitionId v50;  // staircase flight between the floors

  DoorId d1;   // outdoor <-> v10, bidirectional
  DoorId d11;  // v11 <-> v10
  DoorId d12;  // v12 -> v10, unidirectional
  DoorId d13;  // v13 <-> v10
  DoorId d14;  // v14 <-> v10
  DoorId d15;  // v13 -> v12, unidirectional
  DoorId d16;  // v10 <-> v50 (staircase, floor 1 end)
  DoorId d2;   // v50 <-> v20 (staircase, floor 2 end)
  DoorId d21;  // v20 <-> v21, bidirectional (paper example)
  DoorId d22;  // v20 <-> v22
  DoorId d23;  // v20 <-> v23
  DoorId d24;  // v20 <-> v21, second door between the same partitions
};

/// Builds the running-example plan. Topology matches every fact the paper
/// states about Fig. 1: d12 and d15 are unidirectional (one can pass d15
/// only from room 13 to room 12), d21 is bidirectional, several doors (d21,
/// d24) connect the same partition pair, the staircase is a virtual room
/// whose two doors carry the stair walking length, and partition v20
/// contains an obstacle that blocks the d22-d24 line of sight. Coordinates
/// are our own (the paper gives none); distances are the same order of
/// magnitude as the paper's illustrative numbers.
FloorPlan MakeRunningExamplePlan(RunningExampleIds* ids = nullptr);

/// Ids for the Fig. 5 obstacle scenario.
struct ObstacleExampleIds {
  PartitionId outdoor;
  PartitionId room1;  // obstacle-free room above
  PartitionId room2;  // serpentine obstacle course
  DoorId d6;          // outdoor <-> room2 (left)
  DoorId d7;          // room2 <-> room1 (left)
  DoorId d8;          // room2 <-> room1 (right)
  DoorId d9;          // room2 <-> outdoor (right)
  Point p;            // near d6/d7, inside room2
  Point q;            // near d8/d9, inside room2
};

/// Builds the Fig. 5 scenario: obstacles inside room 2 make the
/// intra-partition p->q path (around the obstacles) much longer than
/// leaving through d7, crossing room 1, and returning through d8 — the
/// paper's justification for re-searching the query's host partition.
FloorPlan MakeObstacleExamplePlan(ObstacleExampleIds* ids = nullptr);

}  // namespace indoor

#endif  // INDOOR_INDOOR_SAMPLE_PLANS_H_
