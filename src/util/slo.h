// Declarative service-level objectives with multi-window burn rates.
//
// An objective says "fraction `target` of <kind> queries complete within
// `threshold_ns`" (e.g. 99% of kNN queries under 2 ms). The engine
// evaluates objectives over a flight-recorder ring (util/timeseries.h):
// for a fast and a slow trailing window it sums the interval histogram
// deltas of the objective's latency histogram, estimates the breaching
// count with HistogramSnapshot::CountBelow, and reports the BURN RATE —
// the observed error fraction divided by the allowed error budget
// (1 - target). Burn 1.0 consumes the budget exactly at the sustainable
// pace; burn 10 exhausts a day of budget in ~2.4 hours. An objective
// ALERTS when both windows burn at or above `alert_burn` — the standard
// two-window rule: the slow window proves the problem is real, the fast
// window proves it is still happening (Google SRE workbook, ch. 5).
//
// `serve --report` prints the SloReport each interval; the per-objective
// burn/compliance gauges (`slo.*`) are the admission-control signal that
// ROADMAP item 1's load shedding will consume. Evaluation is pure
// arithmetic over recordings, so it works in metrics-OFF builds too
// (where it only ever sees recordings made elsewhere).

#ifndef INDOOR_UTIL_SLO_H_
#define INDOOR_UTIL_SLO_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/timeseries.h"

namespace indoor {
namespace slo {

/// One latency objective over a registry histogram.
struct LatencyObjective {
  /// Display name; also the `slo.<name>.*` gauge component.
  std::string name;
  /// The latency histogram it constrains (e.g. "query.knn.latency_ns").
  std::string histogram;
  /// Samples at or under this are good.
  uint64_t threshold_ns = 0;
  /// Target good fraction in (0, 1], e.g. 0.99.
  double target = 0.99;
};

/// A set of objectives plus the evaluation windows.
struct SloConfig {
  std::vector<LatencyObjective> objectives;
  /// Trailing fast window ("is it still happening") in seconds.
  double fast_window_s = 10.0;
  /// Trailing slow window ("is it real") in seconds.
  double slow_window_s = 60.0;
  /// Both windows must burn at or above this to alert.
  double alert_burn = 4.0;
};

/// The default serving objectives (range/knn/pt2pt; thresholds
/// documented in docs/OBSERVABILITY.md).
SloConfig DefaultSloConfig();

/// Parses "name=THRESHOLD@TARGET[,name=...]" (e.g.
/// "knn=2ms@0.999,range=5ms@0.99,query.pt2pt_matrix.latency_ns=500us@0.99").
/// THRESHOLD takes ns/us/ms/s suffixes (bare numbers are nanoseconds).
/// A name without a '.' maps to histogram "query.<name>.latency_ns";
/// a dotted name is used as the histogram name verbatim.
Result<SloConfig> ParseSloSpec(const std::string& spec);

/// One objective's tally over one trailing window.
struct WindowBurn {
  /// Window length actually covered by ring samples (may be shorter than
  /// configured on a young ring).
  double seconds = 0.0;
  /// Samples observed / estimated breaching the threshold.
  double total = 0.0;
  double breaching = 0.0;
  /// breaching / total (0 on an idle window).
  double error_rate = 0.0;
  /// error_rate / (1 - target); a target of 1.0 makes any breach burn
  /// at kInfiniteBurn.
  double burn_rate = 0.0;
};

/// Burn rate reported when the error budget is zero and breached.
inline constexpr double kInfiniteBurn = 1e9;

/// One evaluated objective.
struct ObjectiveStatus {
  LatencyObjective objective;
  WindowBurn fast;
  WindowBurn slow;
  /// Good fraction over the slow window (1.0 when idle).
  double compliance = 1.0;
  /// Both windows burning at or above SloConfig::alert_burn.
  bool alerting = false;
};

/// The full evaluation; what `serve --report` prints.
struct SloReport {
  std::vector<ObjectiveStatus> objectives;

  /// True when any objective alerts — the load-shedding signal.
  bool Alerting() const;

  /// One line per objective: compliance, fast/slow burn, ALERT marker.
  void WriteReport(std::FILE* out) const;
};

/// Evaluates `config` over the trailing windows of `samples` (a
/// flight-recorder ring or a loaded recording, oldest first).
SloReport Evaluate(const SloConfig& config,
                   const std::vector<tseries::IntervalSample>& samples);

/// Publishes `slo.<name>.burn_fast` / `.burn_slow` / `.compliance`
/// gauges for every objective (no-op under -DINDOOR_METRICS=OFF).
void PublishGauges(const SloReport& report);

}  // namespace slo
}  // namespace indoor

#endif  // INDOOR_UTIL_SLO_H_
