#include "util/slo.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace indoor {
namespace slo {

SloConfig DefaultSloConfig() {
  SloConfig config;
  config.objectives = {
      {"range", "query.range.latency_ns", 5'000'000, 0.99},
      {"knn", "query.knn.latency_ns", 5'000'000, 0.99},
      {"pt2pt", "query.pt2pt_matrix.latency_ns", 2'000'000, 0.99},
  };
  return config;
}

namespace {

/// "2ms" / "500us" / "1.5s" / "250000" (bare = ns) -> nanoseconds.
bool ParseDuration(const std::string& text, uint64_t* out_ns) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || value < 0.0) return false;
  const std::string unit(end);
  double scale = 1.0;
  if (unit == "ns" || unit.empty()) {
    scale = 1.0;
  } else if (unit == "us") {
    scale = 1e3;
  } else if (unit == "ms") {
    scale = 1e6;
  } else if (unit == "s") {
    scale = 1e9;
  } else {
    return false;
  }
  *out_ns = static_cast<uint64_t>(value * scale);
  return true;
}

}  // namespace

Result<SloConfig> ParseSloSpec(const std::string& spec) {
  SloConfig config = DefaultSloConfig();
  config.objectives.clear();
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const size_t eq = item.find('=');
    const size_t at = item.find('@', eq == std::string::npos ? 0 : eq);
    if (eq == std::string::npos || eq == 0 || at == std::string::npos ||
        at <= eq + 1 || at + 1 >= item.size()) {
      return Status::InvalidArgument(
          "bad SLO spec item '" + item +
          "' (want name=THRESHOLD@TARGET, e.g. knn=2ms@0.99)");
    }
    LatencyObjective objective;
    objective.name = item.substr(0, eq);
    if (!ParseDuration(item.substr(eq + 1, at - eq - 1),
                       &objective.threshold_ns) ||
        objective.threshold_ns == 0) {
      return Status::InvalidArgument("bad SLO threshold in '" + item +
                                     "' (want e.g. 2ms, 500us, 250000)");
    }
    char* end = nullptr;
    const std::string target_text = item.substr(at + 1);
    objective.target = std::strtod(target_text.c_str(), &end);
    if (end == target_text.c_str() || *end != '\0' ||
        objective.target <= 0.0 || objective.target > 1.0) {
      return Status::InvalidArgument("bad SLO target in '" + item +
                                     "' (want a fraction in (0, 1])");
    }
    objective.histogram =
        objective.name.find('.') != std::string::npos
            ? objective.name
            : "query." + objective.name + ".latency_ns";
    config.objectives.push_back(std::move(objective));
  }
  if (config.objectives.empty()) {
    return Status::InvalidArgument("SLO spec names no objectives");
  }
  return config;
}

namespace {

/// Accumulates one objective over the trailing `window_s` seconds of the
/// ring (walking newest to oldest until the window is covered).
WindowBurn TallyWindow(const LatencyObjective& objective,
                       const std::vector<tseries::IntervalSample>& samples,
                       double window_s) {
  WindowBurn burn;
  for (auto it = samples.rbegin(); it != samples.rend(); ++it) {
    if (burn.seconds >= window_s) break;
    burn.seconds += static_cast<double>(it->duration_us) / 1e6;
    const metrics::HistogramSnapshot* hist =
        tseries::FindHistogram(it->delta, objective.histogram);
    if (hist == nullptr || hist->count == 0) continue;
    burn.total += static_cast<double>(hist->count);
    burn.breaching +=
        static_cast<double>(hist->count) -
        hist->CountBelow(static_cast<double>(objective.threshold_ns));
  }
  burn.breaching = std::max(0.0, burn.breaching);
  if (burn.total > 0.0) {
    burn.error_rate = burn.breaching / burn.total;
    const double budget = 1.0 - objective.target;
    burn.burn_rate = budget > 0.0
                         ? burn.error_rate / budget
                         : (burn.breaching > 0.0 ? kInfiniteBurn : 0.0);
    burn.burn_rate = std::min(burn.burn_rate, kInfiniteBurn);
  }
  return burn;
}

}  // namespace

SloReport Evaluate(const SloConfig& config,
                   const std::vector<tseries::IntervalSample>& samples) {
  SloReport report;
  report.objectives.reserve(config.objectives.size());
  for (const LatencyObjective& objective : config.objectives) {
    ObjectiveStatus status;
    status.objective = objective;
    status.fast = TallyWindow(objective, samples, config.fast_window_s);
    status.slow = TallyWindow(objective, samples, config.slow_window_s);
    status.compliance = 1.0 - status.slow.error_rate;
    status.alerting = status.slow.total > 0.0 &&
                      status.fast.burn_rate >= config.alert_burn &&
                      status.slow.burn_rate >= config.alert_burn;
    report.objectives.push_back(std::move(status));
  }
  return report;
}

bool SloReport::Alerting() const {
  for (const ObjectiveStatus& status : objectives) {
    if (status.alerting) return true;
  }
  return false;
}

void SloReport::WriteReport(std::FILE* out) const {
  if (objectives.empty()) return;
  std::fprintf(out, "slo:\n");
  for (const ObjectiveStatus& status : objectives) {
    const LatencyObjective& o = status.objective;
    std::fprintf(out,
                 "  %-12s target %.3f%% <= %.3fms  compliance %.3f%%  "
                 "burn fast %.2f / slow %.2f  (n=%.0f)%s\n",
                 o.name.c_str(), o.target * 100.0,
                 static_cast<double>(o.threshold_ns) / 1e6,
                 status.compliance * 100.0, status.fast.burn_rate,
                 status.slow.burn_rate, status.slow.total,
                 status.alerting ? "  ALERT" : "");
  }
}

void PublishGauges(const SloReport& report) {
#ifdef INDOOR_METRICS_ENABLED
  // Dynamic gauge names: go through the registry directly (the macros
  // cache per-site statics, which would pin the first objective's name).
  metrics::MetricsRegistry& registry = metrics::MetricsRegistry::Global();
  for (const ObjectiveStatus& status : report.objectives) {
    const std::string prefix = "slo." + status.objective.name;
    registry.GetGauge(prefix + ".burn_fast").Set(status.fast.burn_rate);
    registry.GetGauge(prefix + ".burn_slow").Set(status.slow.burn_rate);
    registry.GetGauge(prefix + ".compliance").Set(status.compliance);
  }
#else
  (void)report;
#endif
}

}  // namespace slo
}  // namespace indoor
