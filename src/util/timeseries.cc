#include "util/timeseries.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>

#include "util/query_log.h"

namespace indoor {
namespace tseries {

// ---------------------------------------------------------- PartitionHotness

void PartitionHotness::Reset(size_t slots) {
  slots_ = slots;
  cells_ = slots == 0 ? nullptr : std::make_unique<Cell[]>(slots);
}

void PartitionHotness::Record(uint32_t slot, uint64_t visits,
                              uint64_t settles) {
  if (slot >= slots_) return;
  Cell& cell = cells_[slot];
  if (visits != 0) cell.visits.fetch_add(visits, std::memory_order_relaxed);
  if (settles != 0) cell.settles.fetch_add(settles, std::memory_order_relaxed);
}

void PartitionHotness::FlushVisits(
    std::vector<std::pair<uint32_t, uint32_t>>* staged) {
  if (staged->empty()) return;
  std::sort(staged->begin(), staged->end());
  uint64_t total_visits = 0;
  uint64_t total_settles = 0;
  size_t i = 0;
  while (i < staged->size()) {
    const uint32_t slot = (*staged)[i].first;
    uint64_t visits = 0;
    uint64_t settles = 0;
    for (; i < staged->size() && (*staged)[i].first == slot; ++i) {
      ++visits;
      settles += (*staged)[i].second;
    }
    Record(slot, visits, settles);
    total_visits += visits;
    total_settles += settles;
  }
  INDOOR_COUNTER_ADD("partition.hot.visits", total_visits);
  INDOOR_COUNTER_ADD("partition.hot.settles", total_settles);
  staged->clear();
}

std::vector<PartitionHotness::Entry> PartitionHotness::Snapshot() const {
  std::vector<Entry> entries;
  for (size_t slot = 0; slot < slots_; ++slot) {
    const uint64_t visits = cells_[slot].visits.load(std::memory_order_relaxed);
    const uint64_t settles =
        cells_[slot].settles.load(std::memory_order_relaxed);
    if (visits == 0 && settles == 0) continue;
    entries.push_back({static_cast<uint32_t>(slot), visits, settles});
  }
  return entries;
}

// -------------------------------------------------------------- derived stats

const metrics::HistogramSnapshot* FindHistogram(
    const metrics::RegistrySnapshot& snapshot, std::string_view name) {
  const auto it = std::lower_bound(
      snapshot.histograms.begin(), snapshot.histograms.end(), name,
      [](const metrics::HistogramSnapshot& h, std::string_view n) {
        return h.name < n;
      });
  if (it == snapshot.histograms.end() || it->name != name) return nullptr;
  return &*it;
}

uint64_t CounterValue(const metrics::RegistrySnapshot& snapshot,
                      std::string_view name) {
  const auto it = std::lower_bound(
      snapshot.counters.begin(), snapshot.counters.end(), name,
      [](const std::pair<std::string, uint64_t>& c, std::string_view n) {
        return c.first < n;
      });
  if (it == snapshot.counters.end() || it->first != name) return 0;
  return it->second;
}

namespace {

constexpr std::string_view kQueryPrefix = "query.";
constexpr std::string_view kLatencySuffix = ".latency_ns";

bool IsQueryLatencyName(const std::string& name) {
  return name.size() > kQueryPrefix.size() + kLatencySuffix.size() &&
         name.compare(0, kQueryPrefix.size(), kQueryPrefix) == 0 &&
         name.compare(name.size() - kLatencySuffix.size(),
                      kLatencySuffix.size(), kLatencySuffix) == 0;
}

}  // namespace

IntervalStats ComputeIntervalStats(const IntervalSample& sample) {
  IntervalStats stats;
  stats.seconds = static_cast<double>(sample.duration_us) / 1e6;
  for (const metrics::HistogramSnapshot& h : sample.delta.histograms) {
    if (IsQueryLatencyName(h.name)) stats.queries += h.count;
  }
  uint64_t hits = 0;
  uint64_t lookups = 0;
  for (const char* cache : {"cache.field", "cache.host", "cache.result"}) {
    const uint64_t h = CounterValue(sample.delta, std::string(cache) + ".hits");
    hits += h;
    lookups += h + CounterValue(sample.delta, std::string(cache) + ".misses");
  }
  if (lookups != 0) {
    stats.cache_hit_rate =
        static_cast<double>(hits) / static_cast<double>(lookups);
  }
  if (stats.seconds > 0.0) {
    stats.qps = static_cast<double>(stats.queries) / stats.seconds;
    stats.repairs_per_sec =
        static_cast<double>(CounterValue(sample.delta, "cache.result.repairs")) /
        stats.seconds;
    stats.settles_per_sec =
        static_cast<double>(
            CounterValue(sample.delta, "distance.dijkstra.settles")) /
        stats.seconds;
    stats.moves_per_sec =
        static_cast<double>(CounterValue(sample.delta, "update.moves")) /
        stats.seconds;
  }
  return stats;
}

double QueryPercentileNs(const IntervalSample& sample, std::string_view kind,
                         double q) {
  std::string name;
  name.reserve(kQueryPrefix.size() + kind.size() + kLatencySuffix.size());
  name.append(kQueryPrefix).append(kind).append(kLatencySuffix);
  const metrics::HistogramSnapshot* h = FindHistogram(sample.delta, name);
  return h == nullptr ? 0.0 : h->Percentile(q);
}

std::vector<std::string> ActiveQueryKinds(const Recording& recording) {
  std::vector<std::string> kinds;
  for (const IntervalSample& sample : recording.samples) {
    for (const metrics::HistogramSnapshot& h : sample.delta.histograms) {
      if (h.count == 0 || !IsQueryLatencyName(h.name)) continue;
      kinds.push_back(h.name.substr(
          kQueryPrefix.size(),
          h.name.size() - kQueryPrefix.size() - kLatencySuffix.size()));
    }
  }
  std::sort(kinds.begin(), kinds.end());
  kinds.erase(std::unique(kinds.begin(), kinds.end()), kinds.end());
  return kinds;
}

// ------------------------------------------------------------ recording files

namespace {

struct RecordingHeader {
  char magic[8];
  uint32_t version;
  uint32_t interval_ms;
  uint64_t sample_count;
  uint32_t context_len;
  uint32_t reserved;
};
static_assert(sizeof(RecordingHeader) == 32, "recording header layout");

struct SampleHeader {
  uint64_t index;
  uint64_t start_us;
  uint64_t duration_us;
  uint32_t text_len;
  uint32_t hot_count;
};
static_assert(sizeof(SampleHeader) == 32, "recording sample layout");

struct HotRecord {
  uint64_t visits;
  uint64_t settles;
  uint32_t slot;
  uint32_t reserved;
};
static_assert(sizeof(HotRecord) == 24, "recording hot-entry layout");

bool EndsWith(const std::string& s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

void AppendJsonNumber(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  out->append(buf);
}

Status WriteBinary(const Recording& recording, std::FILE* out) {
  RecordingHeader header{};
  std::memcpy(header.magic, kRecordingMagic, sizeof(header.magic));
  header.version = kRecordingVersion;
  header.interval_ms = recording.interval_ms;
  header.sample_count = recording.samples.size();
  header.context_len = static_cast<uint32_t>(recording.context.size());
  std::fwrite(&header, sizeof(header), 1, out);
  std::fwrite(recording.context.data(), 1, recording.context.size(), out);
  for (const IntervalSample& sample : recording.samples) {
    const std::string text = qlog::SerializeSnapshotText(sample.delta);
    SampleHeader sh{};
    sh.index = sample.index;
    sh.start_us = sample.start_us;
    sh.duration_us = sample.duration_us;
    sh.text_len = static_cast<uint32_t>(text.size());
    sh.hot_count = static_cast<uint32_t>(sample.hot.size());
    std::fwrite(&sh, sizeof(sh), 1, out);
    std::fwrite(text.data(), 1, text.size(), out);
    for (const HotDelta& hot : sample.hot) {
      HotRecord record{hot.visits, hot.settles, hot.slot, 0};
      std::fwrite(&record, sizeof(record), 1, out);
    }
  }
  return std::ferror(out) != 0 ? Status::IOError("recording write failed")
                               : Status::OK();
}

void WriteJsonl(const Recording& recording, std::FILE* out) {
  std::string line = "{\"recording\": {\"version\": " +
                     std::to_string(kRecordingVersion) +
                     ", \"interval_ms\": " +
                     std::to_string(recording.interval_ms) +
                     ", \"samples\": " +
                     std::to_string(recording.samples.size()) +
                     ", \"context\": \"";
  metrics::AppendJsonEscaped(&line, recording.context);
  line.append("\"}}\n");
  std::fwrite(line.data(), 1, line.size(), out);
  for (const IntervalSample& sample : recording.samples) {
    line.clear();
    AppendIntervalJson(&line, sample);
    line.push_back('\n');
    std::fwrite(line.data(), 1, line.size(), out);
  }
}

}  // namespace

void AppendIntervalJson(std::string* out, const IntervalSample& sample) {
  const IntervalStats stats = ComputeIntervalStats(sample);
  out->append("{\"interval\": " + std::to_string(sample.index));
  out->append(", \"start_us\": " + std::to_string(sample.start_us));
  out->append(", \"duration_us\": " + std::to_string(sample.duration_us));
  out->append(", \"queries\": " + std::to_string(stats.queries));
  out->append(", \"qps\": ");
  AppendJsonNumber(out, stats.qps);
  out->append(", \"cache_hit_rate\": ");
  AppendJsonNumber(out, stats.cache_hit_rate);
  out->append(", \"settles_per_sec\": ");
  AppendJsonNumber(out, stats.settles_per_sec);
  out->append(", \"moves_per_sec\": ");
  AppendJsonNumber(out, stats.moves_per_sec);
  out->append(", \"counters\": {");
  bool first = true;
  for (const auto& [name, value] : sample.delta.counters) {
    if (value == 0) continue;
    if (!first) out->append(", ");
    first = false;
    out->push_back('"');
    metrics::AppendJsonEscaped(out, name);
    out->append("\": " + std::to_string(value));
  }
  out->append("}, \"gauges\": {");
  first = true;
  for (const auto& [name, value] : sample.delta.gauges) {
    if (value == 0.0) continue;
    if (!first) out->append(", ");
    first = false;
    out->push_back('"');
    metrics::AppendJsonEscaped(out, name);
    out->append("\": ");
    AppendJsonNumber(out, value);
  }
  out->append("}, \"histograms\": {");
  first = true;
  for (const metrics::HistogramSnapshot& h : sample.delta.histograms) {
    if (h.count == 0) continue;
    if (!first) out->append(", ");
    first = false;
    out->push_back('"');
    metrics::AppendJsonEscaped(out, h.name);
    out->append("\": {\"count\": " + std::to_string(h.count) +
                ", \"sum\": " + std::to_string(h.sum) +
                ", \"max\": " + std::to_string(h.max) + ", \"p50\": ");
    AppendJsonNumber(out, h.Percentile(0.50));
    out->append(", \"p95\": ");
    AppendJsonNumber(out, h.Percentile(0.95));
    out->append(", \"p99\": ");
    AppendJsonNumber(out, h.Percentile(0.99));
    out->push_back('}');
  }
  out->append("}, \"hot\": [");
  first = true;
  for (const HotDelta& hot : sample.hot) {
    if (!first) out->append(", ");
    first = false;
    out->append("[" + std::to_string(hot.slot) + ", " +
                std::to_string(hot.visits) + ", " +
                std::to_string(hot.settles) + "]");
  }
  out->append("]}");
}

Status WriteRecordingFile(const Recording& recording,
                          const std::string& path) {
  std::FILE* out = std::fopen(path.c_str(), "wb");
  if (out == nullptr) {
    return Status::IOError("cannot open recording '" + path + "'");
  }
  Status status = Status::OK();
  if (EndsWith(path, ".jsonl")) {
    WriteJsonl(recording, out);
    if (std::ferror(out) != 0) status = Status::IOError("recording write failed");
  } else {
    status = WriteBinary(recording, out);
  }
  std::fclose(out);
  return status;
}

Result<Recording> ReadRecording(const std::string& path) {
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (in == nullptr) {
    return Status::IOError("cannot open recording '" + path + "'");
  }
  const auto fail = [&](const std::string& message) -> Status {
    std::fclose(in);
    return Status::InvalidArgument("recording '" + path + "': " + message);
  };
  RecordingHeader header{};
  if (std::fread(&header, sizeof(header), 1, in) != 1) {
    return fail("truncated header");
  }
  if (std::memcmp(header.magic, kRecordingMagic, sizeof(header.magic)) != 0) {
    return fail("bad magic (not a binary flight recording; note that .jsonl "
                "exports are one-way)");
  }
  if (header.version != kRecordingVersion) {
    return fail("unsupported version " + std::to_string(header.version));
  }
  Recording recording;
  recording.label = path;
  recording.interval_ms = header.interval_ms;
  recording.context.resize(header.context_len);
  if (header.context_len != 0 &&
      std::fread(recording.context.data(), 1, header.context_len, in) !=
          header.context_len) {
    return fail("truncated context");
  }
  recording.samples.reserve(header.sample_count);
  for (uint64_t i = 0; i < header.sample_count; ++i) {
    SampleHeader sh{};
    if (std::fread(&sh, sizeof(sh), 1, in) != 1) {
      return fail("truncated sample header");
    }
    IntervalSample sample;
    sample.index = sh.index;
    sample.start_us = sh.start_us;
    sample.duration_us = sh.duration_us;
    std::string text(sh.text_len, '\0');
    if (sh.text_len != 0 &&
        std::fread(text.data(), 1, sh.text_len, in) != sh.text_len) {
      return fail("truncated sample snapshot");
    }
    sample.delta = qlog::ParseSnapshotText(text);
    sample.hot.reserve(sh.hot_count);
    for (uint32_t j = 0; j < sh.hot_count; ++j) {
      HotRecord record{};
      if (std::fread(&record, sizeof(record), 1, in) != 1) {
        return fail("truncated hot entries");
      }
      sample.hot.push_back({record.slot, record.visits, record.settles});
    }
    recording.samples.push_back(std::move(sample));
  }
  std::fclose(in);
  return recording;
}

// ------------------------------------------------------------- FlightRecorder

struct FlightRecorder::Impl {
  mutable std::mutex mu;  // guards the ring and the session flags
  std::condition_variable cv;
  std::thread sampler;
  bool running = false;
  bool stop = false;
  FlightRecorderOptions options;
  std::deque<IntervalSample> ring;
  std::atomic<uint64_t> next_index{0};
  std::atomic<uint64_t> evictions{0};

  // Sampler-thread state: written only between Start and the join in
  // Stop, so it needs no lock.
  metrics::RegistrySnapshot prev;
  std::vector<PartitionHotness::Entry> prev_hot;
  std::chrono::steady_clock::time_point origin;
  std::chrono::steady_clock::time_point last;

  /// prev -> now hotness delta, ascending by slot (both inputs are
  /// ascending). A cell that shrank (accumulator Reset mid-run) reports
  /// its current value, mirroring the counter-restart rule of
  /// RegistrySnapshot::DeltaSince.
  std::vector<HotDelta> DiffHot(
      const std::vector<PartitionHotness::Entry>& now) const {
    std::vector<HotDelta> delta;
    size_t j = 0;
    for (const PartitionHotness::Entry& entry : now) {
      while (j < prev_hot.size() && prev_hot[j].slot < entry.slot) ++j;
      uint64_t visits = entry.visits;
      uint64_t settles = entry.settles;
      if (j < prev_hot.size() && prev_hot[j].slot == entry.slot &&
          prev_hot[j].visits <= entry.visits) {
        visits -= prev_hot[j].visits;
        settles -= std::min(prev_hot[j].settles, settles);
      }
      if (visits == 0 && settles == 0) continue;
      delta.push_back({entry.slot, visits, settles});
    }
    if (delta.size() > options.hot_slots_max) {
      // Keep the busiest cells; count what falls off so truncation is
      // visible in the registry rather than silent.
      std::nth_element(delta.begin(), delta.begin() + options.hot_slots_max,
                       delta.end(), [](const HotDelta& a, const HotDelta& b) {
                         return a.visits > b.visits;
                       });
      INDOOR_COUNTER_ADD("timeseries.hot_truncated",
                         delta.size() - options.hot_slots_max);
      delta.resize(options.hot_slots_max);
      std::sort(delta.begin(), delta.end(),
                [](const HotDelta& a, const HotDelta& b) {
                  return a.slot < b.slot;
                });
    }
    return delta;
  }

  void TakeSample() {
    const auto now = std::chrono::steady_clock::now();
    const uint64_t duration_us = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(now - last)
            .count());
    if (duration_us == 0) return;  // degenerate interval: nothing to attribute
    metrics::RegistrySnapshot snap = metrics::MetricsRegistry::Global().Snapshot();
    std::vector<PartitionHotness::Entry> hot_now;
    if (options.hotness != nullptr) hot_now = options.hotness->Snapshot();
    IntervalSample sample;
    sample.index = next_index.fetch_add(1, std::memory_order_relaxed);
    sample.start_us = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(last - origin)
            .count());
    sample.duration_us = duration_us;
    sample.delta = snap.DeltaSince(prev);
    sample.hot = DiffHot(hot_now);
    INDOOR_GAUGE_SET("partition.hot.active", sample.hot.size());
    {
      std::lock_guard<std::mutex> lock(mu);
      ring.push_back(std::move(sample));
      while (ring.size() > options.ring_capacity) {
        ring.pop_front();
        evictions.fetch_add(1, std::memory_order_relaxed);
        INDOOR_COUNTER_INC("timeseries.evictions");
      }
    }
    prev = std::move(snap);
    prev_hot = std::move(hot_now);
    last = now;
    INDOOR_COUNTER_INC("timeseries.intervals");
  }

  void Loop() {
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
      cv.wait_for(lock, std::chrono::milliseconds(options.interval_ms),
                  [&] { return stop; });
      if (stop) break;
      lock.unlock();
      TakeSample();
      lock.lock();
    }
    lock.unlock();
    TakeSample();  // the final partial interval
  }
};

FlightRecorder::FlightRecorder() : impl_(new Impl()) {}

FlightRecorder::~FlightRecorder() {
  Stop();
  delete impl_;
}

FlightRecorder& FlightRecorder::Global() {
  // Leaked like the registry: serve paths may dump during teardown.
  static FlightRecorder* global = new FlightRecorder();
  return *global;
}

Status FlightRecorder::Start(const FlightRecorderOptions& options) {
#ifndef INDOOR_METRICS_ENABLED
  (void)options;
  return Status::FailedPrecondition(
      "flight recorder unavailable: metrics disabled in this build "
      "(-DINDOOR_METRICS=OFF); a recording would be empty");
#else
  Impl& im = *impl_;
  std::lock_guard<std::mutex> lock(im.mu);
  if (im.running) {
    return Status::FailedPrecondition("flight recorder already running");
  }
  if (options.interval_ms == 0) {
    return Status::InvalidArgument("recording interval must be > 0 ms");
  }
  if (options.ring_capacity == 0) {
    return Status::InvalidArgument("recording ring capacity must be > 0");
  }
  im.options = options;
  im.ring.clear();
  im.next_index.store(0, std::memory_order_relaxed);
  im.evictions.store(0, std::memory_order_relaxed);
  im.stop = false;
  im.origin = im.last = std::chrono::steady_clock::now();
  im.prev = metrics::MetricsRegistry::Global().Snapshot();
  im.prev_hot.clear();
  if (options.hotness != nullptr) im.prev_hot = options.hotness->Snapshot();
  im.running = true;
  INDOOR_GAUGE_SET("timeseries.interval_ms", options.interval_ms);
  im.sampler = std::thread([this] { impl_->Loop(); });
  return Status::OK();
#endif
}

void FlightRecorder::Stop() {
  Impl& im = *impl_;
  {
    std::lock_guard<std::mutex> lock(im.mu);
    if (!im.running) return;
    im.stop = true;
  }
  im.cv.notify_all();
  im.sampler.join();
  std::lock_guard<std::mutex> lock(im.mu);
  im.running = false;
}

bool FlightRecorder::running() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->running;
}

Recording FlightRecorder::Snapshot() const {
  Impl& im = *impl_;
  Recording recording;
  std::lock_guard<std::mutex> lock(im.mu);
  recording.context = im.options.context;
  recording.interval_ms = im.options.interval_ms;
  recording.samples.assign(im.ring.begin(), im.ring.end());
  return recording;
}

Status FlightRecorder::Dump(const std::string& path) const {
  const Status status = WriteRecordingFile(Snapshot(), path);
  if (status.ok()) INDOOR_COUNTER_INC("timeseries.dumps");
  return status;
}

uint64_t FlightRecorder::intervals() const {
  return impl_->next_index.load(std::memory_order_relaxed);
}

uint64_t FlightRecorder::evictions() const {
  return impl_->evictions.load(std::memory_order_relaxed);
}

}  // namespace tseries
}  // namespace indoor
