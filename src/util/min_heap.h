// A reusable vector-backed binary min-heap for the query hot paths.
//
// std::priority_queue owns its container and offers no way to clear it
// while keeping the allocation, so every Dijkstra that builds one pays a
// fresh heap allocation. MinHeap exposes clear()/reserve() so per-thread
// scratch state (query_scratch.h) can recycle the buffer across queries:
// steady-state pushes perform no allocations.
//
// Ordering is bit-identical to
//   std::priority_queue<T, std::vector<T>, std::greater<T>>
// because push/pop are implemented with the same std::push_heap /
// std::pop_heap calls the adaptor uses — replacing one with the other
// cannot change pop order, which keeps Dijkstra prev[] trees (and thus
// reconstructed paths) exactly reproducible.

#ifndef INDOOR_UTIL_MIN_HEAP_H_
#define INDOOR_UTIL_MIN_HEAP_H_

#include <algorithm>
#include <cstddef>
#include <functional>
#include <vector>

namespace indoor {

/// Min-heap on operator< of T (smallest element at top()).
template <typename T>
class MinHeap {
 public:
  bool empty() const { return data_.empty(); }
  size_t size() const { return data_.size(); }

  /// Drops all elements but keeps the allocated capacity.
  void clear() { data_.clear(); }
  void reserve(size_t n) { data_.reserve(n); }

  /// Allocated capacity in elements (scratch-arena decay accounting).
  size_t capacity() const { return data_.capacity(); }
  /// Releases capacity beyond the current size (scratch-arena decay).
  void shrink_to_fit() { data_.shrink_to_fit(); }

  void push(T value) {
    data_.push_back(std::move(value));
    std::push_heap(data_.begin(), data_.end(), std::greater<T>());
  }

  const T& top() const { return data_.front(); }

  void pop() {
    std::pop_heap(data_.begin(), data_.end(), std::greater<T>());
    data_.pop_back();
  }

 private:
  std::vector<T> data_;
};

}  // namespace indoor

#endif  // INDOOR_UTIL_MIN_HEAP_H_
