#include "util/trace_export.h"

#include <cinttypes>
#include <map>
#include <mutex>
#include <utility>

namespace indoor {
namespace trace {

struct TraceEventCollector::State {
  mutable std::mutex mu;
  TraceExportOptions options;
  std::chrono::steady_clock::time_point origin =
      std::chrono::steady_clock::now();
  std::vector<CollectedTrace> traces;
  std::map<uint32_t, std::string> track_names;
};

TraceEventCollector& TraceEventCollector::Global() {
  static TraceEventCollector* global = new TraceEventCollector();
  return *global;
}

TraceEventCollector::TraceEventCollector() : state_(new State()) {}
TraceEventCollector::~TraceEventCollector() { delete state_; }

void TraceEventCollector::Enable(const TraceExportOptions& options) {
  State& st = *state_;
  std::lock_guard<std::mutex> lock(st.mu);
  st.options = options;
  st.origin = std::chrono::steady_clock::now();
  st.traces.clear();
  st.track_names.clear();
  ticket_.store(0, std::memory_order_relaxed);
  armed_.store(1, std::memory_order_relaxed);
}

void TraceEventCollector::Disable() {
  armed_.store(0, std::memory_order_relaxed);
  State& st = *state_;
  std::lock_guard<std::mutex> lock(st.mu);
  st.traces.clear();
  st.track_names.clear();
}

void TraceEventCollector::Offer(const metrics::QueryTrace& trace,
                                uint32_t tid, const std::string& track_label,
                                uint64_t seq, bool slow) {
  if (!armed()) return;
  State& st = *state_;
  // The ticket makes the sampling rate exact under any interleaving:
  // every offered query advances it once, and exactly the multiples of
  // sample_every fire.
  uint32_t sample_every;
  bool keep_slow;
  {
    std::lock_guard<std::mutex> lock(st.mu);
    sample_every = st.options.sample_every;
    keep_slow = st.options.keep_slow;
  }
  const uint64_t ticket = ticket_.fetch_add(1, std::memory_order_relaxed);
  const bool sampled = sample_every > 0 && ticket % sample_every == 0;
  if (!sampled && !(slow && keep_slow)) return;

  CollectedTrace kept;
  kept.tid = tid;
  kept.seq = seq;
  kept.slow = slow;
  kept.events = trace.events();

  std::lock_guard<std::mutex> lock(st.mu);
  if (armed_.load(std::memory_order_relaxed) == 0) return;
  if (st.traces.size() >= st.options.max_traces) {
    INDOOR_COUNTER_INC("qtrace.dropped");
    return;
  }
  const auto delta = trace.origin() - st.origin;
  kept.base_ns = delta.count() > 0
                     ? static_cast<uint64_t>(
                           std::chrono::duration_cast<std::chrono::nanoseconds>(
                               delta)
                               .count())
                     : 0;
  st.track_names.emplace(tid, track_label);
  st.traces.push_back(std::move(kept));
  INDOOR_COUNTER_INC("qtrace.kept");
}

size_t TraceEventCollector::trace_count() const {
  State& st = *state_;
  std::lock_guard<std::mutex> lock(st.mu);
  return st.traces.size();
}

namespace {
/// Appends nanoseconds as fractional microseconds (the trace-event time
/// unit) with nanosecond precision.
void AppendMicros(std::string* out, uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03u",
                static_cast<uint64_t>(ns / 1000),
                static_cast<unsigned>(ns % 1000));
  out->append(buf);
}
}  // namespace

void TraceEventCollector::WriteChromeJson(std::string* out) const {
  State& st = *state_;
  std::lock_guard<std::mutex> lock(st.mu);
  out->append("{\"displayTimeUnit\": \"ns\", \"traceEvents\": [");
  bool first = true;
  const auto comma = [&] {
    if (!first) out->append(",");
    first = false;
    out->append("\n ");
  };
  for (const auto& [tid, name] : st.track_names) {
    comma();
    out->append(
        "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": " +
        std::to_string(tid) + ", \"args\": {\"name\": \"");
    metrics::AppendJsonEscaped(out, name);
    out->append("\"}}");
  }
  for (const CollectedTrace& kept : st.traces) {
    for (const auto& event : kept.events) {
      comma();
      out->append("{\"name\": \"");
      metrics::AppendJsonEscaped(out, event.name);
      out->append("\", \"cat\": \"query\", \"ph\": \"X\", \"pid\": 1");
      out->append(", \"tid\": " + std::to_string(kept.tid));
      out->append(", \"ts\": ");
      AppendMicros(out, kept.base_ns + event.start_ns);
      out->append(", \"dur\": ");
      AppendMicros(out, event.duration_ns);
      out->append(", \"args\": {\"seq\": " + std::to_string(kept.seq));
      out->append(", \"depth\": " + std::to_string(event.depth));
      out->append(kept.slow ? ", \"slow\": true}}" : "}}");
    }
  }
  out->append("\n]}\n");
}

Status TraceEventCollector::ExportFile(const std::string& path) const {
  std::string json;
  WriteChromeJson(&json);
  std::FILE* out = std::fopen(path.c_str(), "wb");
  if (out == nullptr) {
    return Status::IOError("cannot open trace output '" + path + "'");
  }
  std::fwrite(json.data(), 1, json.size(), out);
  std::fclose(out);
  return Status::OK();
}

}  // namespace trace
}  // namespace indoor
