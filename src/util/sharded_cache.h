// A generic N-way sharded read-through LRU cache for cross-query work
// sharing (docs/ARCHITECTURE.md "serving layer").
//
// Design: the key space is split across `shards` independent LRU maps by
// mixed key hash; each shard is an intrusive (std::list + unordered_map)
// LRU guarded by its own mutex, so concurrent readers on different shards
// never contend and readers on the same shard only serialize for the
// duration of a find + splice + copy-out. Capacity is byte-bounded:
// every entry carries a caller-supplied byte charge and each shard evicts
// from its LRU tail once its slice of the budget is exceeded.
//
// The hit path performs no heap allocations (hash find, list splice, and
// whatever the caller's accept functor does — typically a copy into a
// pre-sized buffer), which keeps the zero-alloc steady-state contract of
// the query hot path (BENCH_baseline.json pins pt2pt at 0 allocs/query
// with the cache enabled).
//
// Observability: hits / misses / evictions / insertions are counted in
// relaxed atomics and, when the library is built with INDOOR_METRICS=ON,
// mirrored into the global MetricsRegistry under
// `<prefix>.hits|misses|evictions|insertions` (docs/METRICS.md).

#ifndef INDOOR_UTIL_SHARDED_CACHE_H_
#define INDOOR_UTIL_SHARDED_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/metrics.h"

namespace indoor {

namespace internal {

/// Registry counters of one cache instance; all null when the library is
/// built without metrics (the cache then only keeps its local atomics).
struct CacheCounters {
  metrics::Counter* hits = nullptr;
  metrics::Counter* misses = nullptr;
  metrics::Counter* evictions = nullptr;
  metrics::Counter* insertions = nullptr;
};

/// Registers (or re-finds) the four `<prefix>.*` counters. Defined in
/// sharded_cache.cc so the template below stays header-only.
CacheCounters RegisterCacheCounters(std::string_view prefix);

/// Final avalanche mix (splitmix64) applied to the caller's hash before
/// shard selection and bucket placement, so weak hashes still spread.
inline uint64_t MixHash(uint64_t h) {
  h += 0x9e3779b97f4a7c15ull;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  return h ^ (h >> 31);
}

/// Smallest power of two >= n (n clamped to [1, 256]).
size_t NormalizeShardCount(size_t n);

}  // namespace internal

/// Point-in-time usage/traffic summary of one ShardedCache (GetStats).
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t insertions = 0;
  size_t entries = 0;
  size_t bytes = 0;
};

/// N-way sharded byte-bounded LRU map. `Hash` must be stateless.
///
/// Thread-safety: Lookup / Insert / Clear / GetStats may be called from
/// any number of threads concurrently. Values are only ever observed
/// under the owning shard's lock (via Lookup's accept functor), so Value
/// needs no synchronization of its own; it must be copyable.
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedCache {
 public:
  using Stats = CacheStats;

  /// `capacity_bytes` is the total budget across all shards;
  /// `metric_prefix` names the registry counters (e.g. "cache.field").
  ShardedCache(size_t capacity_bytes, size_t shards,
               std::string_view metric_prefix)
      : counters_(internal::RegisterCacheCounters(metric_prefix)),
        capacity_bytes_(capacity_bytes),
        shards_(internal::NormalizeShardCount(shards)) {
    shard_bits_ = 0;
    for (size_t s = shards_.size(); s > 1; s >>= 1) ++shard_bits_;
  }

  /// Looks up `key`; on a bucket hit calls `accept(value)` under the shard
  /// lock. `accept` returns whether the entry is truly usable (e.g. an
  /// exact-point match behind a quantized key); only then is the entry
  /// promoted to MRU and the lookup counted as a hit. Returns the accept
  /// verdict (false on absent key). Allocation-free.
  template <typename Fn>
  bool Lookup(const Key& key, Fn&& accept) {
    Shard& shard = ShardFor(key);
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      const auto it = shard.map.find(key);
      if (it != shard.map.end() && accept(it->second->value)) {
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        hits_.fetch_add(1, std::memory_order_relaxed);
        if (counters_.hits != nullptr) counters_.hits->Increment();
        return true;
      }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (counters_.misses != nullptr) counters_.misses->Increment();
    return false;
  }

  /// Inserts (or replaces) `key` with a `bytes`-byte charge, then evicts
  /// LRU entries until the shard is back under its slice of the budget.
  /// An entry larger than the whole slice is admitted and immediately
  /// evicted (the shard ends empty), so pathological values cannot wedge
  /// the budget.
  void Insert(const Key& key, Value value, size_t bytes) {
    Shard& shard = ShardFor(key);
    const size_t shard_capacity = capacity_bytes_ / shards_.size();
    uint64_t evicted = 0;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      auto it = shard.map.find(key);
      if (it != shard.map.end()) {
        shard.bytes -= it->second->bytes;
        it->second->value = std::move(value);
        it->second->bytes = bytes;
        shard.bytes += bytes;
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      } else {
        shard.lru.push_front(Entry{key, std::move(value), bytes});
        shard.map.emplace(key, shard.lru.begin());
        shard.bytes += bytes;
      }
      while (shard.bytes > shard_capacity && !shard.lru.empty()) {
        const Entry& tail = shard.lru.back();
        shard.bytes -= tail.bytes;
        shard.map.erase(tail.key);
        shard.lru.pop_back();
        ++evicted;
      }
    }
    insertions_.fetch_add(1, std::memory_order_relaxed);
    if (counters_.insertions != nullptr) counters_.insertions->Increment();
    if (evicted > 0) {
      evictions_.fetch_add(evicted, std::memory_order_relaxed);
      if (counters_.evictions != nullptr) counters_.evictions->Add(evicted);
    }
  }

  /// Finds `key` and calls `mutate(value)` under the shard lock (in-place
  /// repair of a stale entry), promoting the entry to MRU. `mutate`
  /// returns the entry's new byte charge; if the entry grew past the
  /// shard's budget slice, colder entries are evicted. Returns false when
  /// the key is absent (e.g. concurrently evicted) — the caller's repair
  /// then simply isn't persisted. Counted as neither hit nor miss: the
  /// probe that found the entry stale already counted.
  template <typename Fn>
  bool Mutate(const Key& key, Fn&& mutate) {
    Shard& shard = ShardFor(key);
    const size_t shard_capacity = capacity_bytes_ / shards_.size();
    uint64_t evicted = 0;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      const auto it = shard.map.find(key);
      if (it == shard.map.end()) return false;
      shard.bytes -= it->second->bytes;
      it->second->bytes = mutate(it->second->value);
      shard.bytes += it->second->bytes;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      while (shard.bytes > shard_capacity && !shard.lru.empty()) {
        const Entry& tail = shard.lru.back();
        shard.bytes -= tail.bytes;
        shard.map.erase(tail.key);
        shard.lru.pop_back();
        ++evicted;
      }
    }
    if (evicted > 0) {
      evictions_.fetch_add(evicted, std::memory_order_relaxed);
      if (counters_.evictions != nullptr) counters_.evictions->Add(evicted);
    }
    return true;
  }

  /// Drops every entry (write-path invalidation). Traffic counters keep
  /// their values; entries/bytes drop to zero.
  void Clear() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.map.clear();
      shard.lru.clear();
      shard.bytes = 0;
    }
  }

  Stats GetStats() const {
    Stats stats;
    stats.hits = hits_.load(std::memory_order_relaxed);
    stats.misses = misses_.load(std::memory_order_relaxed);
    stats.evictions = evictions_.load(std::memory_order_relaxed);
    stats.insertions = insertions_.load(std::memory_order_relaxed);
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      stats.entries += shard.map.size();
      stats.bytes += shard.bytes;
    }
    return stats;
  }

  size_t capacity_bytes() const { return capacity_bytes_; }
  size_t shard_count() const { return shards_.size(); }

 private:
  struct Entry {
    Key key;
    Value value;
    size_t bytes;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<Key, typename std::list<Entry>::iterator, Hash> map;
    size_t bytes = 0;
  };

  Shard& ShardFor(const Key& key) {
    if (shard_bits_ == 0) return shards_[0];
    const uint64_t mixed = internal::MixHash(Hash{}(key));
    return shards_[mixed >> (64 - shard_bits_)];
  }

  internal::CacheCounters counters_;
  size_t capacity_bytes_;
  unsigned shard_bits_ = 0;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> insertions_{0};
  std::vector<Shard> shards_;
};

}  // namespace indoor

#endif  // INDOOR_UTIL_SHARDED_CACHE_H_
