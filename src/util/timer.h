// Wall-clock timing for the benchmark harness.

#ifndef INDOOR_UTIL_TIMER_H_
#define INDOOR_UTIL_TIMER_H_

#include <chrono>

namespace indoor {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction/Restart, in milliseconds.
  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Elapsed time in microseconds.
  double ElapsedMicros() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace indoor

#endif  // INDOOR_UTIL_TIMER_H_
