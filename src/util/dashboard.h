// Self-rendering performance dashboards over flight recordings.
//
// RenderDashboard turns one or more recordings (util/timeseries.h) into a
// single self-contained HTML file: inline SVG sparklines (per-interval
// QPS and per-kind p50/p95/p99), the SLO burn-rate section (util/slo.h),
// a per-partition hotness heatmap, and — with two or more recordings — an
// attribution table that diffs per-query counter costs against the
// QPS/p99 deltas, so "scenario B is 2x slower" comes with "…and it
// settles 3.1x more Dijkstra nodes per query" in the same view. No
// external JS, no external CSS, no network: the file renders anywhere,
// archives losslessly next to bench JSONs, and diffable runs stay
// diffable years later.
//
// Pure file processing — works identically in -DINDOOR_METRICS=OFF
// builds (which can load and render recordings made elsewhere, like the
// registry report classes).

#ifndef INDOOR_UTIL_DASHBOARD_H_
#define INDOOR_UTIL_DASHBOARD_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/slo.h"
#include "util/status.h"
#include "util/timeseries.h"

namespace indoor {
namespace dash {

/// Rendering knobs.
struct DashboardOptions {
  /// Objectives for the SLO section (evaluated per recording).
  slo::SloConfig slo = slo::DefaultSloConfig();
  /// Page title.
  std::string title = "indoor flight recording";
};

/// Appends `s` HTML-escaped (& < > " ') — recording labels and context
/// are operator-supplied strings and are never emitted raw.
void AppendHtmlEscaped(std::string* out, std::string_view s);

/// Renders the dashboard HTML. Section ids: "summary", "qps", "latency",
/// "slo", "hotness", and (with >= 2 recordings) "attribution" — the
/// CI smoke validator keys on these.
std::string RenderDashboard(const std::vector<tseries::Recording>& recordings,
                            const DashboardOptions& options = {});

/// RenderDashboard straight to a file.
Status WriteDashboardFile(const std::vector<tseries::Recording>& recordings,
                          const std::string& path,
                          const DashboardOptions& options = {});

}  // namespace dash
}  // namespace indoor

#endif  // INDOOR_UTIL_DASHBOARD_H_
