// Small string helpers shared by the floor-plan loader and bench reporters.

#ifndef INDOOR_UTIL_STRING_UTIL_H_
#define INDOOR_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace indoor {

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Parses a double; returns false on any trailing garbage or empty input.
bool ParseDouble(std::string_view text, double* out);

/// Parses a non-negative integer; returns false on garbage/empty/overflow.
bool ParseUint32(std::string_view text, uint32_t* out);

}  // namespace indoor

#endif  // INDOOR_UTIL_STRING_UTIL_H_
