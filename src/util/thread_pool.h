// Fixed-size thread pool and deterministic parallel-for, the parallelism
// layer used by index construction (paper §IV-A builds are embarrassingly
// parallel: one independent door-Dijkstra per matrix row) and by the
// concurrent benchmark/serving harnesses.
//
// Design points:
//  * No work stealing: a ThreadPool is a plain FIFO queue drained by a
//    fixed set of workers. Submissions never migrate between queues, so
//    scheduling is easy to reason about under TSan.
//  * ParallelFor distributes [begin, end) as contiguous chunks claimed
//    from a shared atomic cursor. Every index is invoked exactly once, so
//    a body that writes only to slot i produces bit-identical results to
//    the serial loop regardless of thread interleaving.
//  * Status propagation: a body may return Status; ParallelFor keeps the
//    error of the LOWEST failing index (the same error a serial loop
//    would report first), never an arbitrary "first observed" one. All
//    iterations run even after a failure, matching the
//    every-index-exactly-once guarantee above.

#ifndef INDOOR_UTIL_THREAD_POOL_H_
#define INDOOR_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/status.h"

namespace indoor {

/// Resolves a user-facing thread-count knob: 0 means "use the hardware
/// concurrency" (at least 1); any other value is returned unchanged.
unsigned ResolveThreadCount(unsigned threads);

/// A fixed set of worker threads draining one FIFO task queue. Destruction
/// waits for all submitted tasks. Submit/Wait may be called from multiple
/// threads; tasks must not Submit to the pool they run on while another
/// thread is in Wait (no re-entrancy is needed anywhere in this codebase).
class ThreadPool {
 public:
  /// Spawns `threads` workers (0 = hardware concurrency).
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned thread_count() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueues a task. Never blocks on task execution.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished.
  void Wait();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;  // queued + currently executing
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

namespace internal {

/// Type-erased core of ParallelFor. Runs `fn(i)` for every i in
/// [begin, end) on `threads` workers (inline when threads <= 1 or the
/// range is trivial) and returns the non-OK status of the lowest failing
/// index, or OK. When `pool` is non-null its workers are used (and
/// `threads` is ignored); otherwise a transient pool is spawned.
Status ParallelForImpl(ThreadPool* pool, size_t begin, size_t end,
                       unsigned threads,
                       const std::function<Status(size_t)>& fn);

template <typename Fn>
std::function<Status(size_t)> WrapBody(Fn& fn) {
  using R = std::invoke_result_t<Fn&, size_t>;
  static_assert(std::is_same_v<R, Status> || std::is_void_v<R>,
                "ParallelFor body must return Status or void");
  if constexpr (std::is_same_v<R, Status>) {
    return [&fn](size_t i) { return fn(i); };
  } else {
    return [&fn](size_t i) {
      fn(i);
      return Status::OK();
    };
  }
}

}  // namespace internal

/// Invokes `fn(i)` for every i in [begin, end) across `threads` workers
/// (1 = plain serial loop, 0 = hardware concurrency). `fn` may return
/// Status or void; the result is the lowest-index failure or OK. The body
/// is invoked exactly once per index, so writing to disjoint per-index
/// slots is race-free and bit-identical to serial execution.
template <typename Fn>
Status ParallelFor(size_t begin, size_t end, unsigned threads, Fn&& fn) {
  return internal::ParallelForImpl(nullptr, begin, end, threads,
                                   internal::WrapBody(fn));
}

/// As above, reusing an existing pool's workers instead of spawning.
template <typename Fn>
Status ParallelFor(ThreadPool& pool, size_t begin, size_t end, Fn&& fn) {
  return internal::ParallelForImpl(&pool, begin, end, pool.thread_count(),
                                   internal::WrapBody(fn));
}

}  // namespace indoor

#endif  // INDOOR_UTIL_THREAD_POOL_H_
