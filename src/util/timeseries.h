// Continuous telemetry: the flight recorder and per-partition hotness.
//
// The metrics registry (util/metrics.h) answers "what has happened since
// the process started"; the query log (util/query_log.h) answers "what
// happened to one query". This header answers "what happened to the
// *service* over the last N seconds": a FlightRecorder samples the global
// registry on a background thread at a fixed interval, stores the
// RegistrySnapshot *delta* of each interval (so interval QPS, per-kind
// p50/p95/p99 from histogram-bucket subtraction, cache hit/repair rates,
// Dijkstra settle rates and ingest rates all fall out directly), keeps a
// fixed-size ring of the most recent intervals, and can dump the ring at
// any moment to a compact binary recording or a JSONL export. The SLO
// engine (util/slo.h) computes burn rates over the ring, and
// `indoor_tool dashboard` renders recordings to self-contained HTML
// (util/dashboard.h).
//
// PartitionHotness is the spatial companion: a lock-free per-partition
// visit/settle accumulator fed by the range/kNN door-expansion paths
// (one batched flush per query, staged through BucketScratch so the
// search inner loops touch no atomics). The recorder folds the
// per-interval hotness delta into each sample, which is what the
// cell-eviction policy of ROADMAP item 3 will consume.
//
// Metrics-OFF builds: the recording/reader/stat types are always
// compiled (tools must load and render recordings in either mode, like
// the registry report classes), but FlightRecorder::Start and the
// hotness recording hooks compile to an immediate "metrics disabled"
// error / nothing respectively — a -DINDOOR_METRICS=OFF serve path is
// bit-identical to the uninstrumented one and can never silently write
// an empty recording.

#ifndef INDOOR_UTIL_TIMESERIES_H_
#define INDOOR_UTIL_TIMESERIES_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/metrics.h"
#include "util/result.h"
#include "util/status.h"

namespace indoor {
namespace tseries {

// ---------------------------------------------------------------------------
// Per-partition hotness.

/// Lock-free per-partition activity accumulator. One cell per partition:
/// `visits` counts door-expansion searches that reached the partition,
/// `settles` counts intra-partition object distance evaluations settled
/// there. Query paths stage (partition, settles) pairs in their
/// per-thread BucketScratch and flush once per query through
/// FlushVisits, so the hot loops never touch these atomics directly.
class PartitionHotness {
 public:
  PartitionHotness() = default;

  /// (Re)sizes to `slots` cells and zeroes them. Writer-side: must not
  /// overlap Record/Snapshot (call at build time, like index mutation).
  void Reset(size_t slots);

  /// Number of cells (0 until Reset).
  size_t slots() const { return slots_; }

  /// Adds activity to one cell (relaxed atomics; out-of-range slots are
  /// dropped rather than trusted).
  void Record(uint32_t slot, uint64_t visits, uint64_t settles);

  /// Drains a query's staged (partition, settles) pairs: coalesces
  /// duplicates, issues one Record per distinct partition, bumps the
  /// aggregate `partition.hot.*` counters, and clears the buffer.
  void FlushVisits(std::vector<std::pair<uint32_t, uint32_t>>* staged);

  /// One active cell in a snapshot or an interval delta.
  struct Entry {
    uint32_t slot = 0;
    uint64_t visits = 0;
    uint64_t settles = 0;
  };

  /// Every cell with nonzero activity, ascending by slot.
  std::vector<Entry> Snapshot() const;

 private:
  struct Cell {
    std::atomic<uint64_t> visits{0};
    std::atomic<uint64_t> settles{0};
  };
  std::unique_ptr<Cell[]> cells_;
  size_t slots_ = 0;
};

// ---------------------------------------------------------------------------
// Recordings.

/// Per-partition activity during one interval (sparse: active cells only).
struct HotDelta {
  uint32_t slot = 0;
  uint64_t visits = 0;
  uint64_t settles = 0;
};

/// One flight-recorder interval: the registry *delta* over the interval
/// (HistogramSnapshot::Percentile on it reports interval quantiles) plus
/// the sparse hotness delta.
struct IntervalSample {
  /// Monotone interval number since Start (evictions leave gaps at the
  /// front, never in the middle).
  uint64_t index = 0;
  /// Interval start, microseconds since the recording started.
  uint64_t start_us = 0;
  /// Measured interval length (the sampler aims for the configured
  /// interval; the recorded truth is this).
  uint64_t duration_us = 0;
  /// Registry delta over the interval (counters/histograms subtract;
  /// gauges keep their end-of-interval value).
  metrics::RegistrySnapshot delta;
  /// Hotness delta over the interval, ascending by slot (may be
  /// truncated to the busiest cells; see FlightRecorderOptions).
  std::vector<HotDelta> hot;
};

/// A dumped (or loaded) flight recording.
struct Recording {
  /// Display label (readers set it to the file path; tools may override).
  std::string label;
  /// Flat "key=value" context lines (same convention as query-log
  /// captures: plan path, workload knobs).
  std::string context;
  /// Configured sampling interval.
  uint32_t interval_ms = 0;
  /// Ring contents in interval order.
  std::vector<IntervalSample> samples;
};

/// Derived per-interval service stats, shared by the SLO engine, the
/// dashboard, and `serve --report`.
struct IntervalStats {
  /// Interval length in seconds (0 when the sample is degenerate).
  double seconds = 0.0;
  /// Queries completed in the interval (sum over query.*.latency_ns).
  uint64_t queries = 0;
  /// queries / seconds.
  double qps = 0.0;
  /// Cross-query cache hit fraction over field+host+result lookups
  /// (0 when the interval made no lookups).
  double cache_hit_rate = 0.0;
  /// Cached-result repairs per second (cache.result.repairs).
  double repairs_per_sec = 0.0;
  /// Door-graph Dijkstra settles per second.
  double settles_per_sec = 0.0;
  /// Object moves ingested per second (update.moves).
  double moves_per_sec = 0.0;
};

/// The histogram named `name` in `snapshot`, or nullptr (sorted-name
/// binary search).
const metrics::HistogramSnapshot* FindHistogram(
    const metrics::RegistrySnapshot& snapshot, std::string_view name);

/// The counter named `name` in `snapshot`, or 0.
uint64_t CounterValue(const metrics::RegistrySnapshot& snapshot,
                      std::string_view name);

/// Derives IntervalStats from one sample's registry delta.
IntervalStats ComputeIntervalStats(const IntervalSample& sample);

/// Interval quantile of `query.<kind>.latency_ns` in nanoseconds
/// (0 when the kind recorded nothing in the interval).
double QueryPercentileNs(const IntervalSample& sample, std::string_view kind,
                         double q);

/// Query kinds (the `<kind>` of query.<kind>.latency_ns) with at least
/// one sample anywhere in the recording, in name order.
std::vector<std::string> ActiveQueryKinds(const Recording& recording);

// ---------------------------------------------------------------------------
// Recording files.

/// Magic + version of the binary recording format (header: magic,
/// version, interval_ms, sample count, context length; per sample: a
/// fixed header, the compact snapshot text of the delta — the query-log
/// trailer format — and the packed hot entries). Host-endian, like the
/// query-log capture format.
inline constexpr char kRecordingMagic[8] = {'I', 'N', 'D', 'O',
                                            'O', 'R', 'T', 'S'};
inline constexpr uint32_t kRecordingVersion = 1;

/// Writes `recording` to `path`: JSONL export when the path ends in
/// ".jsonl" (one meta line, then one self-contained JSON object per
/// interval with derived stats and interval percentiles), the binary
/// format otherwise.
Status WriteRecordingFile(const Recording& recording, const std::string& path);

/// Reads a binary recording (JSONL exports are one-way). Sets `label`
/// to `path`.
Result<Recording> ReadRecording(const std::string& path);

/// Appends one interval as a single JSON line (no trailing newline).
/// Every embedded string (context, instrument names) is JSON-escaped.
void AppendIntervalJson(std::string* out, const IntervalSample& sample);

// ---------------------------------------------------------------------------
// The flight recorder.

/// FlightRecorder configuration.
struct FlightRecorderOptions {
  /// Sampling interval. Every interval costs one registry snapshot plus
  /// one delta merge — at the default the recorder is cheap enough to
  /// leave always-on in serve (see docs/OBSERVABILITY.md).
  uint32_t interval_ms = 250;
  /// Ring capacity in intervals; the oldest interval is evicted when
  /// full (timeseries.evictions counts them).
  size_t ring_capacity = 1024;
  /// Optional hotness accumulator to fold into every sample (not owned;
  /// must outlive the recorder).
  const PartitionHotness* hotness = nullptr;
  /// At most this many hot cells per interval, keeping the busiest by
  /// visits (timeseries.hot_truncated counts dropped cells — truncation
  /// is never silent).
  size_t hot_slots_max = 512;
  /// Flat "key=value" context lines embedded in dumps.
  std::string context;
};

/// Samples the global MetricsRegistry on a background thread into a ring
/// of interval deltas. Start/Stop delimit one recording session and must
/// not run concurrently with each other; Snapshot/Dump are safe at any
/// moment, including while the sampler is mid-interval.
class FlightRecorder {
 public:
  FlightRecorder();
  ~FlightRecorder();  // stops a running session

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// The process-wide recorder (what `serve --record` uses).
  static FlightRecorder& Global();

  /// Starts sampling. Fails if already running, on a degenerate
  /// interval, and in metrics-OFF builds (FailedPrecondition: a build
  /// with -DINDOOR_METRICS=OFF has nothing to record, and silently
  /// writing empty recordings would masquerade as a healthy service).
  Status Start(const FlightRecorderOptions& options);

  /// Stops the sampler thread, folding the final partial interval into
  /// the ring. No-op when not running.
  void Stop();

  /// True between a successful Start and the matching Stop.
  bool running() const;

  /// A copy of the current ring (dump-while-sampling safe).
  Recording Snapshot() const;

  /// Dumps the current ring via WriteRecordingFile.
  Status Dump(const std::string& path) const;

  /// Intervals sampled this session (monotone; evicted intervals count).
  uint64_t intervals() const;

  /// Intervals evicted from the ring this session.
  uint64_t evictions() const;

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace tseries
}  // namespace indoor

#endif  // INDOOR_UTIL_TIMESERIES_H_
