// Status: lightweight error propagation for fallible operations, modeled on
// the Status idiom used by Arrow and RocksDB. The core query/distance paths
// never throw; constructors that cannot fail use CHECK-style invariants
// (see check.h) and everything else returns Status or Result<T> (result.h).

#ifndef INDOOR_UTIL_STATUS_H_
#define INDOOR_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace indoor {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kIOError,
  kParseError,
  kUnimplemented,
  kInternal,
};

/// Returns a stable human-readable name for a StatusCode.
const char* StatusCodeName(StatusCode code);

/// A success-or-error value. Cheap to copy on the OK path (no allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace indoor

/// Propagates a non-OK Status to the caller.
#define INDOOR_RETURN_NOT_OK(expr)                   \
  do {                                               \
    ::indoor::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                       \
  } while (false)

#endif  // INDOOR_UTIL_STATUS_H_
