#include "util/query_log.h"

#include <algorithm>
#include <cinttypes>
#include <cstring>
#include <memory>
#include <mutex>
#include <sstream>

namespace indoor {
namespace qlog {

namespace internal {
std::atomic<uint32_t> g_armed{0};
}  // namespace internal

namespace {

constexpr size_t kThreadBufferRecords = 256;

const char* KindName(uint8_t kind) {
  switch (static_cast<RecordKind>(kind)) {
    case RecordKind::kDistance: return "distance";
    case RecordKind::kRange: return "range";
    case RecordKind::kKnn: return "knn";
    case RecordKind::kMove: return "move";
  }
  return "unknown";
}

void AppendDouble(std::string* out, double v) {
  char buf[64];
  // %.17g round-trips doubles exactly — JSONL records must preserve the
  // bitwise result digests the binary format keeps natively.
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

/// Binary capture header. The context block follows immediately;
/// `record_count` is patched in at Disable time.
struct CaptureHeader {
  char magic[8];
  uint32_t version;
  uint32_t record_size;
  uint64_t record_count;
  uint32_t context_len;
  uint32_t reserved;
};
static_assert(sizeof(CaptureHeader) == 32, "capture header layout");
constexpr long kRecordCountOffset = 16;

}  // namespace

void AppendRecordJson(std::string* out, const QueryLogRecord& r) {
  out->append("{\"seq\": " + std::to_string(r.seq));
  out->append(", \"kind\": \"");
  // KindName returns fixed identifiers today, but every string that lands
  // inside JSON quotes goes through the escaper — the slow-query sink is a
  // machine-read JSONL stream, and one unescaped byte corrupts the line.
  metrics::AppendJsonEscaped(out, KindName(r.kind));
  out->append("\", \"batch\": " + std::to_string(r.batch_id));
  out->append(", \"thread\": " + std::to_string(r.thread_id));
  out->append(", \"start_us\": " + std::to_string(r.start_us));
  out->append(", \"latency_ns\": " + std::to_string(r.latency_ns));
  out->append(", \"ax\": ");
  AppendDouble(out, r.ax);
  out->append(", \"ay\": ");
  AppendDouble(out, r.ay);
  if (static_cast<RecordKind>(r.kind) == RecordKind::kDistance) {
    out->append(", \"bx\": ");
    AppendDouble(out, r.bx);
    out->append(", \"by\": ");
    AppendDouble(out, r.by);
  }
  if (static_cast<RecordKind>(r.kind) == RecordKind::kRange) {
    out->append(", \"radius\": ");
    AppendDouble(out, r.radius);
  }
  if (static_cast<RecordKind>(r.kind) == RecordKind::kKnn) {
    out->append(", \"k\": " + std::to_string(r.k));
  }
  if (static_cast<RecordKind>(r.kind) == RecordKind::kMove) {
    out->append(", \"object\": " + std::to_string(r.k));
  }
  out->append(", \"host\": ");
  out->append(r.host == 0xffffffffu ? "null" : std::to_string(r.host));
  out->append(", \"results\": " + std::to_string(r.result_count));
  out->append(", \"value\": ");
  AppendDouble(out, r.result_value);
  out->append(", \"settles\": " + std::to_string(r.settles));
  out->append(", \"cache_hits\": " + std::to_string(r.cache_hits));
  out->append(", \"cache_misses\": " + std::to_string(r.cache_misses));
  out->append(", \"flags\": [");
  bool first = true;
  const auto flag = [&](uint8_t bit, const char* name) {
    if ((r.flags & bit) == 0) return;
    if (!first) out->append(", ");
    first = false;
    out->append("\"");
    metrics::AppendJsonEscaped(out, name);
    out->append("\"");
  };
  flag(kFlagSlow, "slow");
  flag(kFlagExplicitScratch, "explicit_scratch");
  flag(kFlagBatched, "batched");
  flag(kFlagMoveBatch, "move_batch");
  out->append("]}");
}

// ------------------------------------------------------------------ QueryLog

/// One thread's staging buffer. The owning thread locks `mu` only for the
/// append (uncontended in steady state); Flush/Disable lock it from the
/// outside. Buffers are owned by the global list and never deallocated,
/// so a drainer can hold a pointer across thread exit.
struct ThreadBuffer {
  std::mutex mu;
  std::vector<QueryLogRecord> records;
};

struct QueryLog::Impl {
  mutable std::mutex mu;  // guards everything below
  std::FILE* sink = nullptr;
  bool jsonl = false;
  bool enabled = false;
  uint64_t slow_ns = 0;
  std::FILE* slow_sink = nullptr;
  uint64_t written = 0;
  std::chrono::steady_clock::time_point origin =
      std::chrono::steady_clock::now();
  metrics::RegistrySnapshot baseline;

  std::mutex buffers_mu;  // guards the list itself, not the buffers
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;

  std::mutex slow_mu;  // serializes slow-sink lines
  std::atomic<uint64_t> next_seq{0};

  ThreadBuffer& LocalBuffer() {
    thread_local ThreadBuffer* local = nullptr;
    if (local == nullptr) {
      auto owned = std::make_unique<ThreadBuffer>();
      owned->records.reserve(kThreadBufferRecords);
      local = owned.get();
      std::lock_guard<std::mutex> lock(buffers_mu);
      buffers.push_back(std::move(owned));
    }
    return *local;
  }

  /// Writes a block of records to the sink. Caller holds `mu`.
  void WriteBlockLocked(const QueryLogRecord* records, size_t n) {
    if (sink == nullptr || n == 0) return;
    if (jsonl) {
      std::string lines;
      for (size_t i = 0; i < n; ++i) {
        AppendRecordJson(&lines, records[i]);
        lines.push_back('\n');
      }
      std::fwrite(lines.data(), 1, lines.size(), sink);
    } else {
      std::fwrite(records, sizeof(QueryLogRecord), n, sink);
    }
    written += n;
  }

  void DrainBuffer(ThreadBuffer& buffer) {
    std::vector<QueryLogRecord> taken;
    {
      std::lock_guard<std::mutex> lock(buffer.mu);
      taken.swap(buffer.records);
    }
    if (taken.empty()) return;
    std::lock_guard<std::mutex> lock(mu);
    if (enabled) WriteBlockLocked(taken.data(), taken.size());
    // Records drained after Disable had already been counted out of the
    // session; dropping them keeps captures self-consistent.
    INDOOR_COUNTER_ADD("qlog.buffer_flushes", 1);
  }

  void DrainAll() {
    // Snapshot the buffer pointers instead of draining under the list
    // lock: DrainBuffer acquires `mu`, and Enable acquires `buffers_mu`
    // while holding `mu` — draining with the list locked would order the
    // two mutexes both ways. Buffers are never deallocated, so the
    // snapshot stays valid after the lock is released.
    std::vector<ThreadBuffer*> snapshot;
    {
      std::lock_guard<std::mutex> list_lock(buffers_mu);
      snapshot.reserve(buffers.size());
      for (auto& buffer : buffers) snapshot.push_back(buffer.get());
    }
    for (ThreadBuffer* buffer : snapshot) DrainBuffer(*buffer);
  }
};

QueryLog& QueryLog::Global() {
  static QueryLog* global = new QueryLog();
  return *global;
}

QueryLog::QueryLog() : impl_(new Impl()) {}
QueryLog::~QueryLog() { delete impl_; }

Status QueryLog::Enable(const QueryLogOptions& options) {
  Impl& im = *impl_;
  std::lock_guard<std::mutex> lock(im.mu);
  if (im.enabled) {
    return Status::InvalidArgument("query log already enabled");
  }
  im.sink = nullptr;
  im.jsonl = false;
  if (!options.path.empty()) {
    im.jsonl = options.path.size() >= 6 &&
               options.path.compare(options.path.size() - 6, 6, ".jsonl") == 0;
    im.sink = std::fopen(options.path.c_str(), "wb");
    if (im.sink == nullptr) {
      return Status::IOError("cannot open query log '" + options.path + "'");
    }
    if (!im.jsonl) {
      CaptureHeader header{};
      std::memcpy(header.magic, kCaptureMagic, sizeof(header.magic));
      header.version = kCaptureVersion;
      header.record_size = sizeof(QueryLogRecord);
      header.record_count = 0;  // patched at Disable
      header.context_len = static_cast<uint32_t>(options.context.size());
      std::fwrite(&header, sizeof(header), 1, im.sink);
      std::fwrite(options.context.data(), 1, options.context.size(), im.sink);
    }
  }
  im.slow_ns = options.slow_threshold_ns;
  im.slow_sink = options.slow_sink != nullptr ? options.slow_sink : stderr;
  im.written = 0;
  im.origin = std::chrono::steady_clock::now();
  im.baseline = metrics::MetricsRegistry::Global().Snapshot();
  im.next_seq.store(0, std::memory_order_relaxed);
  im.enabled = true;
  // Stale records from a previous session (a submit that raced its
  // Disable) must not leak into this capture.
  {
    std::lock_guard<std::mutex> list_lock(im.buffers_mu);
    for (auto& buffer : im.buffers) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mu);
      buffer->records.clear();
    }
  }
  internal::g_armed.store(1, std::memory_order_relaxed);
  return Status::OK();
}

void QueryLog::Disable() {
  Impl& im = *impl_;
  internal::g_armed.store(0, std::memory_order_relaxed);
  im.DrainAll();
  std::lock_guard<std::mutex> lock(im.mu);
  if (!im.enabled) return;
  im.enabled = false;
  im.slow_ns = 0;
  if (im.sink != nullptr) {
    if (!im.jsonl) {
      // Trailer: the metrics-registry delta of this capture session, then
      // patch the record count into the header.
      const std::string trailer = SerializeSnapshotText(
          metrics::MetricsRegistry::Global().Snapshot().DeltaSince(
              im.baseline));
      std::fwrite(trailer.data(), 1, trailer.size(), im.sink);
      std::fseek(im.sink, kRecordCountOffset, SEEK_SET);
      const uint64_t count = im.written;
      std::fwrite(&count, sizeof(count), 1, im.sink);
    }
    std::fclose(im.sink);
    im.sink = nullptr;
  }
}

bool QueryLog::enabled() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->enabled;
}

uint64_t QueryLog::slow_threshold_ns() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->slow_ns;
}

uint64_t QueryLog::NextSeq() {
  return impl_->next_seq.fetch_add(1, std::memory_order_relaxed);
}

uint64_t QueryLog::SessionMicros() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - impl_->origin)
          .count());
}

uint64_t QueryLog::records_written() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->written;
}

void QueryLog::Submit(QueryLogRecord record) {
  Impl& im = *impl_;
  uint64_t slow_ns = 0;
  bool log_open = false;
  {
    std::lock_guard<std::mutex> lock(im.mu);
    slow_ns = im.slow_ns;
    log_open = im.enabled && im.sink != nullptr;
  }
  const bool slow = slow_ns > 0 && record.latency_ns >= slow_ns;
  if (slow) record.flags |= kFlagSlow;
  if (log_open) {
    ThreadBuffer& buffer = im.LocalBuffer();
    bool full = false;
    {
      std::lock_guard<std::mutex> lock(buffer.mu);
      buffer.records.push_back(record);
      full = buffer.records.size() >= kThreadBufferRecords;
    }
    if (full) im.DrainBuffer(buffer);
    INDOOR_COUNTER_INC("qlog.records");
  }
  if (slow) {
    std::string line;
    AppendRecordJson(&line, record);
    line.push_back('\n');
    std::FILE* sink;
    {
      std::lock_guard<std::mutex> lock(im.mu);
      sink = im.slow_sink != nullptr ? im.slow_sink : stderr;
    }
    {
      std::lock_guard<std::mutex> lock(im.slow_mu);
      std::fwrite(line.data(), 1, line.size(), sink);
      std::fflush(sink);
    }
    INDOOR_COUNTER_INC("qlog.slow_queries");
  }
}

void QueryLog::Flush() { impl_->DrainAll(); }

// ------------------------------------------------------------ capture reader

std::map<std::string, std::string> QueryLogCapture::ContextMap() const {
  std::map<std::string, std::string> map;
  std::istringstream in(context);
  std::string line;
  while (std::getline(in, line)) {
    const size_t eq = line.find('=');
    if (eq == std::string::npos || eq == 0) continue;
    map[line.substr(0, eq)] = line.substr(eq + 1);
  }
  return map;
}

Result<QueryLogCapture> ReadQueryLogCapture(const std::string& path) {
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (in == nullptr) {
    return Status::IOError("cannot open capture '" + path + "'");
  }
  const auto fail = [&](const std::string& message) -> Status {
    std::fclose(in);
    return Status::InvalidArgument("capture '" + path + "': " + message);
  };
  CaptureHeader header{};
  if (std::fread(&header, sizeof(header), 1, in) != 1) {
    return fail("truncated header");
  }
  if (std::memcmp(header.magic, kCaptureMagic, sizeof(header.magic)) != 0) {
    return fail("bad magic (not a binary query-log capture; note that "
                ".jsonl logs are not replayable)");
  }
  if (header.version != kCaptureVersion) {
    return fail("unsupported version " + std::to_string(header.version));
  }
  if (header.record_size != sizeof(QueryLogRecord)) {
    return fail("record size " + std::to_string(header.record_size) +
                " does not match this build's " +
                std::to_string(sizeof(QueryLogRecord)));
  }
  QueryLogCapture capture;
  capture.context.resize(header.context_len);
  if (header.context_len != 0 &&
      std::fread(capture.context.data(), 1, header.context_len, in) !=
          header.context_len) {
    return fail("truncated context");
  }
  capture.records.resize(header.record_count);
  if (header.record_count != 0 &&
      std::fread(capture.records.data(), sizeof(QueryLogRecord),
                 header.record_count, in) != header.record_count) {
    return fail("truncated records (expected " +
                std::to_string(header.record_count) + ")");
  }
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) {
    capture.metrics_text.append(buf, n);
  }
  std::fclose(in);
  return capture;
}

// --------------------------------------------------- compact snapshot text

std::string SerializeSnapshotText(const metrics::RegistrySnapshot& snapshot) {
  std::string out;
  const auto safe = [](const std::string& name) {
    return name.find_first_of(" \t\n\r") == std::string::npos;
  };
  for (const auto& [name, value] : snapshot.counters) {
    if (!safe(name)) continue;
    out += "counter " + name + " " + std::to_string(value) + "\n";
  }
  char buf[64];
  for (const auto& [name, value] : snapshot.gauges) {
    if (!safe(name)) continue;
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out += "gauge " + name + " " + buf + "\n";
  }
  for (const auto& hist : snapshot.histograms) {
    if (!safe(hist.name)) continue;
    out += "hist " + hist.name + " " + std::to_string(hist.count) + " " +
           std::to_string(hist.sum) + " " + std::to_string(hist.max);
    for (size_t i = 0; i < hist.buckets.size(); ++i) {
      if (hist.buckets[i] == 0) continue;
      out += " " + std::to_string(i) + ":" + std::to_string(hist.buckets[i]);
    }
    out += "\n";
  }
  return out;
}

metrics::RegistrySnapshot ParseSnapshotText(const std::string& text) {
  metrics::RegistrySnapshot snapshot;
  std::istringstream in(text);
  std::string kind;
  while (in >> kind) {
    if (kind == "counter") {
      std::string name;
      uint64_t value = 0;
      if (in >> name >> value) snapshot.counters.emplace_back(name, value);
    } else if (kind == "gauge") {
      std::string name;
      double value = 0;
      if (in >> name >> value) snapshot.gauges.emplace_back(name, value);
    } else if (kind == "hist") {
      metrics::HistogramSnapshot hist;
      if (!(in >> hist.name >> hist.count >> hist.sum >> hist.max)) break;
      hist.buckets.assign(metrics::Histogram::kNumBuckets, 0);
      // Sparse buckets run to end of line.
      std::string rest;
      std::getline(in, rest);
      std::istringstream pairs(rest);
      std::string pair;
      while (pairs >> pair) {
        const size_t colon = pair.find(':');
        if (colon == std::string::npos) continue;
        const size_t index =
            static_cast<size_t>(std::stoul(pair.substr(0, colon)));
        if (index < hist.buckets.size()) {
          hist.buckets[index] =
              static_cast<uint64_t>(std::stoull(pair.substr(colon + 1)));
        }
      }
      snapshot.histograms.push_back(std::move(hist));
    } else {
      std::string rest;
      std::getline(in, rest);  // unknown line kind: skip
    }
  }
  return snapshot;
}

// -------------------------------------------------------------------- scopes

#ifdef INDOOR_METRICS_ENABLED

namespace {
thread_local QueryLogScope* g_active_scope = nullptr;

/// Small process-stable id for threads outside a BatchExecutor.
uint16_t LocalThreadId() {
  static std::atomic<uint32_t> next{0};
  thread_local uint16_t id = static_cast<uint16_t>(
      next.fetch_add(1, std::memory_order_relaxed) & 0xffffu);
  return id;
}
}  // namespace

namespace internal {
QueryLogScope* ActiveScope() { return g_active_scope; }
}  // namespace internal

void QueryLogScope::Init(RecordKind kind, double ax, double ay, double bx,
                         double by, double radius, uint32_t k,
                         bool explicit_scratch) {
  if (g_active_scope != nullptr) return;  // inner query: outer scope owns it
  g_active_scope = this;
  active_ = true;
  QueryLog& log = QueryLog::Global();
  record_.seq = log.NextSeq();
  record_.start_us = log.SessionMicros();
  record_.ax = ax;
  record_.ay = ay;
  record_.bx = bx;
  record_.by = by;
  record_.radius = radius;
  record_.k = k;
  record_.kind = static_cast<uint8_t>(kind);
  record_.thread_id = LocalThreadId();
  if (explicit_scratch) record_.flags |= kFlagExplicitScratch;
  start_ = std::chrono::steady_clock::now();
}

uint64_t QueryLogScope::Finish() {
  if (!active_ || finished_) return record_.latency_ns;
  finished_ = true;
  g_active_scope = nullptr;
  record_.latency_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
  QueryLog::Global().Submit(record_);
  return record_.latency_ns;
}

#endif  // INDOOR_METRICS_ENABLED

}  // namespace qlog
}  // namespace indoor
