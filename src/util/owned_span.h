// OwnedSpan<T>: a contiguous read-only array that either OWNS its storage
// (built in memory / loaded by copy) or BORROWS it (a view into an
// mmap-ed index container, index_io.h). Index structures store their bulk
// payloads through this so the zero-copy mapped load path and the classic
// build path share one representation; the borrower must keep the backing
// mapping alive for the structure's lifetime (IndexFramework holds the
// MappedIndexContainer next to the structures it feeds).

#ifndef INDOOR_UTIL_OWNED_SPAN_H_
#define INDOOR_UTIL_OWNED_SPAN_H_

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

namespace indoor {

/// Owned-or-borrowed immutable array payload. Default-constructed = empty.
template <typename T>
class OwnedSpan {
 public:
  OwnedSpan() = default;

  /// Takes ownership of `v`'s storage.
  static OwnedSpan Own(std::vector<T> v) {
    OwnedSpan s;
    s.owned_ = std::move(v);
    s.data_ = s.owned_.data();
    s.size_ = s.owned_.size();
    return s;
  }

  /// Borrows [data, data + size); the caller keeps the storage alive.
  static OwnedSpan Borrow(const T* data, size_t size) {
    OwnedSpan s;
    s.data_ = data;
    s.size_ = size;
    return s;
  }

  OwnedSpan(OwnedSpan&& o) noexcept { *this = std::move(o); }
  OwnedSpan& operator=(OwnedSpan&& o) noexcept {
    if (this == &o) return *this;
    // Re-anchor the data pointer when the payload was owned (a moved-from
    // vector's buffer address follows the move); borrowed pointers carry
    // over unchanged.
    const bool was_owned = !o.owned_.empty();
    const size_t size = o.size_;
    owned_ = std::move(o.owned_);
    data_ = was_owned ? owned_.data() : o.data_;
    size_ = size;
    o.data_ = nullptr;
    o.size_ = 0;
    o.owned_.clear();
    return *this;
  }
  OwnedSpan(const OwnedSpan&) = delete;
  OwnedSpan& operator=(const OwnedSpan&) = delete;

  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const T& operator[](size_t i) const { return data_[i]; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  operator std::span<const T>() const { return {data_, size_}; }

  /// True when this span owns its storage (false for mmap-backed views).
  bool owned() const { return !owned_.empty() || size_ == 0; }

  /// Logical payload bytes (identical for owned and borrowed storage, so
  /// MemoryBytes() reporting stays comparable across load modes).
  size_t PayloadBytes() const { return size_ * sizeof(T); }

 private:
  const T* data_ = nullptr;
  size_t size_ = 0;
  std::vector<T> owned_;
};

}  // namespace indoor

#endif  // INDOOR_UTIL_OWNED_SPAN_H_
