// Deterministic pseudo-random generation. Every experiment in the paper uses
// randomized workloads ("we issue 100 queries...", "50 times with random
// indoor positions"); reproducibility across runs requires a seeded,
// platform-stable generator, so we use splitmix64/xoshiro256** rather than
// std::mt19937 + distribution objects whose outputs vary across standard
// library implementations.

#ifndef INDOOR_UTIL_RANDOM_H_
#define INDOOR_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace indoor {

/// xoshiro256** seeded via splitmix64. Stable across platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  uint64_t NextU64();

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t NextU64(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double NextDouble(double lo, double hi);

  /// Bernoulli trial with probability p in [0, 1].
  bool NextBool(double p = 0.5);

  /// Picks a uniformly random element index of a non-empty container size.
  size_t NextIndex(size_t size) {
    INDOOR_CHECK(size > 0);
    return static_cast<size_t>(NextU64(size));
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextU64(i));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  /// Derives an independent child generator (for parallel or per-phase use).
  Rng Fork();

 private:
  uint64_t state_[4];
};

}  // namespace indoor

#endif  // INDOOR_UTIL_RANDOM_H_
