#include "util/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <limits>

namespace indoor {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool ParseDouble(std::string_view text, double* out) {
  text = StripWhitespace(text);
  if (text.empty()) return false;
  std::string buf(text);
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = value;
  return true;
}

bool ParseUint32(std::string_view text, uint32_t* out) {
  text = StripWhitespace(text);
  if (text.empty()) return false;
  std::string buf(text);
  errno = 0;
  char* end = nullptr;
  unsigned long long value = std::strtoull(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  if (buf[0] == '-') return false;
  if (value > std::numeric_limits<uint32_t>::max()) return false;
  *out = static_cast<uint32_t>(value);
  return true;
}

}  // namespace indoor
