// Trace-event export: serializes QueryTrace span timelines to the Chrome
// trace-event JSON format, loadable in chrome://tracing and Perfetto.
//
// A TraceEventCollector accumulates completed per-query traces from many
// threads onto one shared timeline: each query runs under its own
// QueryTrace (installed by the recording site, e.g. BatchExecutor), and
// when the query finishes the site *offers* the trace to the collector,
// which keeps it if it was sampled (every Nth offered trace, decided by an
// atomic ticket so the rate is exact under any thread interleaving) or if
// the query crossed the slow-query threshold (util/query_log.h). Kept
// traces are rebased from their private QueryTrace origin onto the
// collector's enable-time origin, so spans from different workers line up
// on one wall-clock axis; each worker renders as its own track (Chrome
// `tid`, named via a thread_name metadata event).
//
// Like the metrics report classes, the collector always compiles — under
// -DINDOOR_METRICS=OFF the recording sites never install traces, so an OFF
// build simply exports an empty timeline.

#ifndef INDOOR_UTIL_TRACE_EXPORT_H_
#define INDOOR_UTIL_TRACE_EXPORT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "util/metrics.h"
#include "util/status.h"

namespace indoor {
namespace trace {

/// Collection policy for TraceEventCollector::Enable.
struct TraceExportOptions {
  /// Keep every Nth offered trace (1 = all, 0 = none via sampling; slow
  /// queries may still be kept below).
  uint32_t sample_every = 0;
  /// Keep every trace offered with slow=true regardless of sampling.
  bool keep_slow = true;
  /// Hard cap on kept traces — a safety valve for long captures; offers
  /// beyond it are dropped (and counted in `qtrace.dropped`).
  size_t max_traces = 1u << 16;
};

/// One kept trace: a QueryTrace's events rebased onto the collector
/// timeline, tagged with its track and query metadata.
struct CollectedTrace {
  /// Chrome track id (BatchExecutor worker index, or a process-stable
  /// thread id for unbatched queries).
  uint32_t tid = 0;
  /// Query arrival sequence number (query-log seq, for cross-referencing
  /// a trace with its query-log record).
  uint64_t seq = 0;
  /// Trace origin in nanoseconds since the collector was enabled.
  uint64_t base_ns = 0;
  /// The query crossed the slow threshold.
  bool slow = false;
  /// Completed spans (QueryTrace completion order; start_ns relative to
  /// base_ns).
  std::vector<metrics::QueryTrace::Event> events;
};

/// Thread-safe accumulator of sampled query traces. Offer() is called once
/// per traced query; it is cheap when the trace is not kept (one atomic
/// ticket). Enable/Disable delimit a collection session.
class TraceEventCollector {
 public:
  /// The global collector (never destroyed).
  static TraceEventCollector& Global();

  /// Starts a collection session: sets the shared timeline origin, resets
  /// the ticket counter, clears previously kept traces, and arms offers.
  void Enable(const TraceExportOptions& options);

  /// Disarms and discards any kept traces.
  void Disable();

  /// True between Enable and Disable — recording sites install a
  /// QueryTrace per query only while armed (one relaxed load).
  bool armed() const { return armed_.load(std::memory_order_relaxed) != 0; }

  /// Offers a completed query trace. Consumes one sampling ticket; keeps
  /// the trace when the ticket fires (1-in-sample_every) or when
  /// `slow && keep_slow`. `tid` selects the Chrome track; `track_label`
  /// names it (first offer per tid wins).
  void Offer(const metrics::QueryTrace& trace, uint32_t tid,
             const std::string& track_label, uint64_t seq, bool slow);

  /// Number of traces currently kept.
  size_t trace_count() const;

  /// Serializes every kept trace as one Chrome trace-event JSON object
  /// ({"displayTimeUnit", "traceEvents": [...]}) with one thread_name
  /// metadata event per track and one complete ("ph":"X") event per span;
  /// timestamps/durations are microseconds on the shared timeline.
  void WriteChromeJson(std::string* out) const;

  /// WriteChromeJson to `path`. Does not clear — a long-running server can
  /// snapshot mid-flight.
  Status ExportFile(const std::string& path) const;

  TraceEventCollector();
  ~TraceEventCollector();
  TraceEventCollector(const TraceEventCollector&) = delete;
  TraceEventCollector& operator=(const TraceEventCollector&) = delete;

 private:
  struct State;

  std::atomic<uint32_t> armed_{0};
  std::atomic<uint64_t> ticket_{0};
  /// Pimpl keeps <mutex>/<map> out of this header; constructed eagerly so
  /// concurrent Offer/Enable never race on the pointer itself.
  State* state_;
};

}  // namespace trace
}  // namespace indoor

#endif  // INDOOR_UTIL_TRACE_EXPORT_H_
