#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace indoor {

unsigned ResolveThreadCount(unsigned threads) {
  if (threads != 0) return threads;
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned n = ResolveThreadCount(threads);
  workers_.reserve(n);
  for (unsigned t = 0; t < n; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

namespace internal {
namespace {

/// Shared state of one ParallelFor call. Chunks are contiguous index
/// blocks claimed in order from `next_chunk`; the error slot keeps the
/// lowest failing index so the reported Status is deterministic.
struct ForState {
  size_t begin;
  size_t end;
  size_t chunk_size;
  size_t chunk_count;
  const std::function<Status(size_t)>* fn;

  std::atomic<size_t> next_chunk{0};
  std::mutex error_mu;
  size_t error_index;  // valid when !error.ok()
  Status error;

  void RunChunks() {
    for (size_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
         c < chunk_count;
         c = next_chunk.fetch_add(1, std::memory_order_relaxed)) {
      const size_t lo = begin + c * chunk_size;
      const size_t hi = std::min(end, lo + chunk_size);
      for (size_t i = lo; i < hi; ++i) {
        Status st = (*fn)(i);
        if (!st.ok()) {
          std::unique_lock<std::mutex> lock(error_mu);
          if (error.ok() || i < error_index) {
            error_index = i;
            error = std::move(st);
          }
        }
      }
    }
  }
};

}  // namespace

Status ParallelForImpl(ThreadPool* pool, size_t begin, size_t end,
                       unsigned threads,
                       const std::function<Status(size_t)>& fn) {
  if (end <= begin) return Status::OK();
  const size_t count = end - begin;
  unsigned workers = pool ? pool->thread_count() : ResolveThreadCount(threads);
  workers = static_cast<unsigned>(
      std::min<size_t>(workers, count));

  if (workers <= 1) {
    // Serial fallback: same exactly-once iteration order, no threads.
    Status first;
    for (size_t i = begin; i < end; ++i) {
      Status st = fn(i);
      if (!st.ok() && first.ok()) first = std::move(st);
    }
    return first;
  }

  ForState state;
  state.begin = begin;
  state.end = end;
  // ~8 chunks per worker balances load without shrinking chunks so far
  // that the atomic cursor becomes contended.
  state.chunk_size = std::max<size_t>(1, count / (workers * 8u));
  state.chunk_count = (count + state.chunk_size - 1) / state.chunk_size;
  state.fn = &fn;

  if (pool) {
    for (unsigned t = 0; t < workers; ++t) {
      pool->Submit([&state] { state.RunChunks(); });
    }
    pool->Wait();
  } else {
    std::vector<std::thread> transient;
    transient.reserve(workers);
    for (unsigned t = 0; t < workers; ++t) {
      transient.emplace_back([&state] { state.RunChunks(); });
    }
    for (std::thread& t : transient) t.join();
  }
  return state.error;
}

}  // namespace internal
}  // namespace indoor
