#include "util/random.h"

namespace indoor {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

uint64_t Rng::NextU64(uint64_t bound) {
  INDOOR_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0ULL - bound) % bound;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  INDOOR_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextU64());  // full 64-bit range
  return lo + static_cast<int64_t>(NextU64(span));
}

double Rng::NextDouble() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  INDOOR_CHECK(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace indoor
