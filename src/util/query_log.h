// Structured per-query logging: the record-level companion of the
// aggregate metrics registry (util/metrics.h).
//
// Every served query emits one fixed-size binary QueryLogRecord — kind,
// host partition, latency, result digest, Dijkstra settles, cache
// hits/misses, scratch source, batch id, worker thread — through a
// per-thread buffer that is flushed to the process-wide sink in blocks,
// so the hot path never contends on the sink lock. Three consumers share
// the format:
//
//   * the QUERY LOG proper (`--query-log FILE`): every record, to a
//     binary capture (default) or JSONL (FILE ends in ".jsonl");
//   * the SLOW-QUERY LOG: any record whose latency crosses a configured
//     threshold is additionally written immediately (JSONL) to a slow
//     sink — stderr by default — whether or not a full log is open;
//   * WORKLOAD CAPTURE/REPLAY: the binary capture embeds the workload
//     context (plan path, object seed, cache settings) in its header and
//     a compact metrics-registry delta in its trailer, so
//     `indoor_tool replay FILE` can re-execute the exact workload and
//     diff the replayed metrics against the captured ones
//     (core/query/workload_replay.h).
//
// Recording sites construct a QueryLogScope at query entry. The scope is
// dormant unless the global log is armed (a full log is open OR a slow
// threshold is set) — one relaxed atomic load — and only one scope per
// thread is live at a time, so a query that calls another query (batch →
// pt2pt, temporal → pt2pt) logs exactly one record at the outermost
// boundary that owns the metadata. Under -DINDOOR_METRICS=OFF the scope
// and every cost hook compile to nothing; the reader/writer classes are
// always compiled so tools can still read captures (an OFF build simply
// captures nothing, like the empty metrics registry).

#ifndef INDOOR_UTIL_QUERY_LOG_H_
#define INDOOR_UTIL_QUERY_LOG_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "util/metrics.h"
#include "util/result.h"
#include "util/status.h"

namespace indoor {
namespace qlog {

/// Query kind of a record. Values are the on-disk encoding and mirror
/// QueryRequest::Kind (core/query/batch_executor.h) so the capture format
/// stays decoupled from the core headers.
enum class RecordKind : uint8_t {
  kDistance = 0,  // pt2pt walking distance a -> b
  kRange = 1,     // objects within `radius` of a
  kKnn = 2,       // `k` nearest objects to a
  kMove = 3,      // object relocation applied through a move batch:
                  // (ax, ay) = target position, host = target partition,
                  // k = object id, result_count = 1 if applied,
                  // result_value = qdigest::MoveDigest of the applied op
};

/// Record flag bits.
enum RecordFlags : uint8_t {
  kFlagSlow = 1u << 0,             // latency crossed the slow threshold
  kFlagExplicitScratch = 1u << 1,  // caller passed a QueryScratch
  kFlagBatched = 1u << 2,          // executed inside a BatchExecutor run
  kFlagMoveBatch = 1u << 3,        // kMove record of one ApplyMoveBatch call
};

/// One query, fixed-size and trivially copyable: the binary capture is a
/// header + a flat array of these. Host-endian; record_size in the header
/// guards against layout drift.
struct QueryLogRecord {
  /// Global arrival order (assigned at query entry).
  uint64_t seq = 0;
  /// BatchExecutor run this query belonged to (0 = unbatched).
  uint64_t batch_id = 0;
  /// Query entry time, microseconds since the log was enabled (replay
  /// pacing uses inter-batch gaps).
  uint64_t start_us = 0;
  /// Wall latency of the query.
  uint64_t latency_ns = 0;
  /// Query position (pt2pt source; range/kNN center).
  double ax = 0.0, ay = 0.0;
  /// pt2pt destination (kDistance only).
  double bx = 0.0, by = 0.0;
  /// Range radius (kRange only).
  double radius = 0.0;
  /// Result digest: the pt2pt distance itself (kDistance), or a 53-bit
  /// order-independent hash of the result set (kRange ids; kKnn ids and
  /// distance bit patterns). Bitwise-comparable across replays.
  double result_value = 0.0;
  /// k (kKnn only).
  uint32_t k = 0;
  /// Result count (1/0 reachable for kDistance, result-set size else).
  uint32_t result_count = 0;
  /// Host partition of the query position (kInvalidId if not indoors).
  uint32_t host = 0xffffffffu;
  /// Door-graph Dijkstra settles attributed to this query.
  uint32_t settles = 0;
  /// Cross-query cache lookups that hit / missed during this query.
  uint32_t cache_hits = 0;
  uint32_t cache_misses = 0;
  /// Worker index (batched) or a small process-stable thread id.
  uint16_t thread_id = 0;
  /// RecordKind.
  uint8_t kind = 0;
  /// RecordFlags bitmask.
  uint8_t flags = 0;
  uint32_t reserved = 0;
};
static_assert(sizeof(QueryLogRecord) == 112,
              "capture format: record layout drifted");
static_assert(std::is_trivially_copyable_v<QueryLogRecord>,
              "records are written/read as raw bytes");

/// Appends `record` as one JSON object (no trailing newline) — the JSONL
/// sink and the slow-query sink line format.
void AppendRecordJson(std::string* out, const QueryLogRecord& record);

/// Sink configuration for QueryLog::Enable.
struct QueryLogOptions {
  /// Full-log sink path; empty = no full log (slow-only arming). A path
  /// ending in ".jsonl" writes JSON lines (analysis); anything else
  /// writes the binary capture format (replayable).
  std::string path;
  /// Latency threshold for the slow-query log; 0 disables it. Records at
  /// or above it are flagged kFlagSlow and written immediately as JSONL
  /// to `slow_sink`.
  uint64_t slow_threshold_ns = 0;
  /// Slow-query sink (nullptr = stderr). Not owned.
  std::FILE* slow_sink = nullptr;
  /// Workload context embedded in the binary capture header: flat
  /// "key=value" lines (see workload_replay.h for the keys replay uses).
  std::string context;
};

namespace internal {
/// Armed = a full log is open or a slow threshold is set. Scopes check
/// this first; when clear, a scope costs one relaxed load.
extern std::atomic<uint32_t> g_armed;
inline bool Armed() {
  return g_armed.load(std::memory_order_relaxed) != 0;
}
}  // namespace internal

/// The process-wide query log. All methods are thread-safe; Enable and
/// Disable delimit one capture session and must not run concurrently
/// with each other (concurrent Submit is fine — records racing a Disable
/// land in the next session or are dropped, never torn).
class QueryLog {
 public:
  /// The global instance (never destroyed).
  static QueryLog& Global();

  /// Opens a capture session. Fails if the sink cannot be opened or a
  /// session is already open. Arms scopes; snapshots the metrics registry
  /// as the baseline for the capture trailer.
  Status Enable(const QueryLogOptions& options);

  /// Flushes every per-thread buffer, writes the capture trailer (the
  /// metrics-registry delta since Enable, compact text), patches the
  /// record count into the header, closes the sink, and disarms.
  void Disable();

  /// True between a successful Enable and the matching Disable.
  bool enabled() const;

  /// The active slow threshold (0 = none). Readable while disabled —
  /// the slow log can be armed without a full log via Enable with an
  /// empty path.
  uint64_t slow_threshold_ns() const;

  /// Appends one completed record: into the calling thread's buffer when
  /// a full log is open (flushed to the sink in blocks), and to the slow
  /// sink immediately when the latency crosses the threshold. Callers
  /// normally go through QueryLogScope instead.
  void Submit(QueryLogRecord record);

  /// Drains every per-thread buffer to the sink (Disable does this;
  /// exposed for tests and long-lived servers that checkpoint).
  void Flush();

  /// Next arrival sequence number.
  uint64_t NextSeq();

  /// Microseconds since the current session was enabled (0 if none).
  uint64_t SessionMicros() const;

  /// Total records written to the full log this session.
  uint64_t records_written() const;

  QueryLog(const QueryLog&) = delete;
  QueryLog& operator=(const QueryLog&) = delete;

 private:
  QueryLog();
  ~QueryLog();
  struct Impl;
  Impl* impl_;
};

// ---------------------------------------------------------------------------
// Capture files.

/// Magic + version of the binary capture format.
inline constexpr char kCaptureMagic[8] = {'I', 'N', 'D', 'O',
                                          'O', 'R', 'Q', 'L'};
inline constexpr uint32_t kCaptureVersion = 1;

/// A parsed binary capture.
struct QueryLogCapture {
  /// Flat "key=value" context lines from the header.
  std::string context;
  /// All records, in file order (per-thread flush order — sort by `seq`
  /// for arrival order; workload_replay does).
  std::vector<QueryLogRecord> records;
  /// The compact metrics-delta text from the trailer (may be empty).
  std::string metrics_text;

  /// Context parsed into a key → value map.
  std::map<std::string, std::string> ContextMap() const;
};

/// Reads a binary capture written by QueryLog. Fails on missing file, bad
/// magic/version, or a record-size mismatch (layout drift).
Result<QueryLogCapture> ReadQueryLogCapture(const std::string& path);

// ---------------------------------------------------------------------------
// Compact metrics-snapshot text: the capture-trailer format. One line per
// instrument, whitespace-delimited (instrument names contain no spaces by
// convention; names that do are rejected by the serializer):
//
//   counter <name> <value>
//   gauge <name> <value>
//   hist <name> <count> <sum> <max> [<bucket>:<count> ...]
//
// Round-trips through ParseSnapshotText with enough fidelity to recompute
// every percentile (sparse buckets travel along).

std::string SerializeSnapshotText(const metrics::RegistrySnapshot& snapshot);
metrics::RegistrySnapshot ParseSnapshotText(const std::string& text);

// ---------------------------------------------------------------------------
// Recording scope + cost hooks.

#ifdef INDOOR_METRICS_ENABLED

/// RAII recording scope for one query. Constructed at every query entry
/// point; dormant (all no-ops) unless the global log is armed and no
/// scope is already live on this thread — the outermost scope owns the
/// record, so a batch-level scope suppresses the per-kind scopes of the
/// queries it wraps. The destructor finishes and submits the record
/// unless Finish() was already called.
class QueryLogScope {
 public:
  QueryLogScope(RecordKind kind, double ax, double ay, double bx, double by,
                double radius, uint32_t k, bool explicit_scratch) {
    if (!internal::Armed()) return;
    Init(kind, ax, ay, bx, by, radius, k, explicit_scratch);
  }

  ~QueryLogScope() {
    if (active_ && !finished_) Finish();
  }

  QueryLogScope(const QueryLogScope&) = delete;
  QueryLogScope& operator=(const QueryLogScope&) = delete;

  /// True when this scope owns the thread's record.
  bool active() const { return active_; }

  /// The record's arrival sequence number (0 when dormant) — cross-links
  /// a trace-export event with its query-log record.
  uint64_t seq() const { return record_.seq; }

  void SetHost(uint32_t host) {
    if (active_) record_.host = host;
  }
  void SetBatch(uint64_t batch_id, uint16_t thread_id) {
    if (!active_) return;
    record_.batch_id = batch_id;
    record_.thread_id = thread_id;
    record_.flags |= kFlagBatched;
  }
  void SetResult(uint32_t count, double value) {
    if (!active_) return;
    record_.result_count = count;
    record_.result_value = value;
  }

  /// Completes the record (computes latency, applies the slow flag) and
  /// submits it. Returns the latency in nanoseconds (0 when dormant).
  /// Idempotent; the destructor calls it if the caller did not.
  uint64_t Finish();

  // Cost hooks (called via the free functions below on the thread's
  // active scope).
  void AddSettles(uint64_t n) { record_.settles += static_cast<uint32_t>(n); }
  void AddCacheLookup(bool hit) {
    hit ? ++record_.cache_hits : ++record_.cache_misses;
  }

 private:
  void Init(RecordKind kind, double ax, double ay, double bx, double by,
            double radius, uint32_t k, bool explicit_scratch);

  QueryLogRecord record_;
  std::chrono::steady_clock::time_point start_;
  bool active_ = false;
  bool finished_ = false;
};

namespace internal {
/// The calling thread's live scope, or nullptr.
QueryLogScope* ActiveScope();
}  // namespace internal

/// Attributes `n` door-graph Dijkstra settles to the live query, if any.
inline void AddSettles(uint64_t n) {
  if (QueryLogScope* scope = internal::ActiveScope()) scope->AddSettles(n);
}

/// Attributes one cross-query-cache lookup (hit or miss) to the live
/// query, if any.
inline void AddCacheLookup(bool hit) {
  if (QueryLogScope* scope = internal::ActiveScope()) {
    scope->AddCacheLookup(hit);
  }
}

#else  // !INDOOR_METRICS_ENABLED

/// OFF build: the scope is an empty shell and every hook is a no-op —
/// instrumented query paths compile to the uninstrumented code.
class QueryLogScope {
 public:
  QueryLogScope(RecordKind, double, double, double, double, double, uint32_t,
                bool) {}
  QueryLogScope(const QueryLogScope&) = delete;
  QueryLogScope& operator=(const QueryLogScope&) = delete;
  bool active() const { return false; }
  uint64_t seq() const { return 0; }
  void SetHost(uint32_t) {}
  void SetBatch(uint64_t, uint16_t) {}
  void SetResult(uint32_t, double) {}
  uint64_t Finish() { return 0; }
};

inline void AddSettles(uint64_t) {}
inline void AddCacheLookup(bool) {}

#endif  // INDOOR_METRICS_ENABLED

}  // namespace qlog
}  // namespace indoor

#endif  // INDOOR_UTIL_QUERY_LOG_H_
