// Observability: process-wide metrics and per-query trace spans.
//
// Three instrument kinds live in one global MetricsRegistry:
//
//   Counter    — monotonically increasing event count (relaxed-atomic add).
//   Gauge      — last-written value (build-phase timings, sizes).
//   Histogram  — fixed power-of-two buckets over uint64 samples, with
//                approximate p50/p95/p99 read from the buckets. Latency
//                histograms record nanoseconds; size histograms record
//                counts (the `_ns` / `_size` / `_results` name suffix says
//                which).
//
// The hot path is lock-free: Counter::Add, Gauge::Set, and
// Histogram::Record are relaxed atomic operations on pre-registered
// instruments; the registry mutex is only taken at registration (once per
// instrumentation site, cached in a function-local static by the macros
// below) and when snapshotting. Instruments are never deallocated or
// moved, so cached references stay valid for the process lifetime.
//
// Instrumentation sites use the INDOOR_* macros, which compile to NOTHING
// when the CMake option INDOOR_METRICS is OFF (no INDOOR_METRICS_ENABLED
// define): the instrumented query hot path is then bit-identical to the
// uninstrumented one. The registry/snapshot/report classes themselves are
// always compiled so tools that print metrics link in either mode — an
// OFF build simply reports an empty registry.
//
// Query-path tracing: a QueryTrace installs itself as the calling
// thread's active trace sink; every TraceSpan that opens and closes while
// it is installed appends one (name, start, duration, depth) event.
// Without an active trace a span with no histogram does not even read the
// clock, so always-on sub-phase spans cost one thread-local load and a
// branch. See docs/METRICS.md for the full metric inventory and overhead
// measurements.

#ifndef INDOOR_UTIL_METRICS_H_
#define INDOOR_UTIL_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace indoor {
namespace metrics {

/// A monotonically increasing event counter. Thread-safe and lock-free.
class Counter {
 public:
  /// Adds `delta` (relaxed; counts are exact, ordering is not promised).
  void Add(uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  /// Adds 1.
  void Increment() { Add(1); }

  /// Current value.
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

  /// Zeroes the counter (snapshot isolation in tests/benches).
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A last-value-wins gauge (build-phase milliseconds, structure sizes).
/// Thread-safe and lock-free.
class Gauge {
 public:
  /// Overwrites the gauge with `value`.
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }

  /// Current value (0.0 until first Set).
  double Value() const { return value_.load(std::memory_order_relaxed); }

  /// Resets the gauge to 0.0.
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// A fixed-bucket histogram over uint64 samples. Bucket 0 holds the value
/// 0; bucket i >= 1 holds [2^(i-1), 2^i). Recording is three relaxed
/// atomic adds plus a conditional max update; percentiles are computed at
/// read time by cumulative walk with linear interpolation inside the
/// resolved bucket, so any reported quantile is within one power of two
/// of the true sample quantile.
class Histogram {
 public:
  /// Number of buckets; bucket kNumBuckets-1 absorbs everything >= 2^62.
  static constexpr size_t kNumBuckets = 64;

  /// Records one sample.
  void Record(uint64_t value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    uint64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
  }

  /// Total samples recorded.
  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }

  /// Sum of all recorded samples.
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Largest recorded sample (0 when empty).
  uint64_t Max() const { return max_.load(std::memory_order_relaxed); }

  /// Count in bucket `i` (i < kNumBuckets).
  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// The bucket a value lands in.
  static size_t BucketIndex(uint64_t value);

  /// Inclusive lower bound of bucket `i` (0 for bucket 0, 2^(i-1) otherwise).
  static uint64_t BucketLowerBound(size_t i);

  /// Exclusive upper bound of bucket `i`.
  static uint64_t BucketUpperBound(size_t i);

  /// Zeroes every bucket and the count/sum/max.
  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

/// Point-in-time copy of one histogram, with quantile math.
struct HistogramSnapshot {
  /// Registered instrument name.
  std::string name;
  /// Total recorded samples.
  uint64_t count = 0;
  /// Sum of all samples.
  uint64_t sum = 0;
  /// Largest sample.
  uint64_t max = 0;
  /// Per-bucket sample counts (Histogram bucket layout).
  std::vector<uint64_t> buckets;

  /// Approximate quantile q in [0, 1]: the rank q*count sample's bucket,
  /// linearly interpolated by rank within the bucket's [lower, upper)
  /// value range. Returns 0 when the histogram is empty.
  double Percentile(double q) const;

  /// Mean sample (0 when empty).
  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// The tail above p99 (slow-query triage): Percentile(0.999). The
  /// recorded max bounds it from above in every report.
  double P999() const { return Percentile(0.999); }

  /// Samples at or below `value`, with linear interpolation inside the
  /// bucket `value` lands in — the SLO engine's "within threshold" count.
  /// Returns `count` when value >= max.
  double CountBelow(double value) const;

  /// Bucket-wise difference `*this - prev` (same instrument, earlier
  /// snapshot): count/sum/buckets subtract, so Percentile() on the result
  /// reports the interval's quantiles rather than lifetime ones. `max`
  /// keeps this snapshot's lifetime max (the per-bucket data cannot
  /// recover an interval max), which only loosens the p-clamp upward.
  /// Restart-safe: when the instrument was reset during the interval
  /// (this count < prev count), the current snapshot is returned as the
  /// delta — everything since the reset — instead of clamping the
  /// interval to zero activity.
  HistogramSnapshot DeltaSince(const HistogramSnapshot& prev) const;
};

/// Point-in-time copy of the whole registry (see
/// MetricsRegistry::Snapshot). Counter/gauge entries are (name, value)
/// pairs; every list is sorted by name.
struct RegistrySnapshot {
  /// Counter values at snapshot time.
  std::vector<std::pair<std::string, uint64_t>> counters;
  /// Gauge values at snapshot time.
  std::vector<std::pair<std::string, double>> gauges;
  /// Histogram copies at snapshot time.
  std::vector<HistogramSnapshot> histograms;

  /// Serializes the snapshot as a JSON object with "counters", "gauges",
  /// and "histograms" members; histogram buckets are emitted sparsely as
  /// {"le": <exclusive upper bound>, "count": n} pairs. Instrument names
  /// (including operator-supplied label strings) are JSON-escaped.
  std::string ToJson() const;

  /// Human-readable report (the `indoor_tool stats` format): one line per
  /// instrument, histogram lines with count/mean/p50/p95/p99/p99.9/max.
  /// Nanosecond histograms (name ending in `_ns`) are scaled to readable
  /// units.
  void WriteReport(std::FILE* out) const;

  /// Instrument-wise difference against an earlier snapshot of the same
  /// registry: counters subtract (instruments absent from `prev` keep
  /// their value), histograms subtract bucket-wise (see
  /// HistogramSnapshot::DeltaSince), gauges keep this snapshot's value
  /// (they are point-in-time already). The result is what happened
  /// *during* the interval — QPS, hit rates, and interval p99s fall out
  /// of it directly instead of being diluted by lifetime totals.
  /// Counter restarts (ResetAll, or a wrapped counter reading below its
  /// previous snapshot) report the current value — everything since the
  /// restart — rather than a silent zero, the Prometheus rate() rule.
  RegistrySnapshot DeltaSince(const RegistrySnapshot& prev) const;
};

/// Appends `s` to `out` with JSON string escaping (quote, backslash,
/// control characters); the quotes themselves are NOT appended. Shared by
/// the snapshot serializer, the query log, and the trace exporter.
void AppendJsonEscaped(std::string* out, std::string_view s);

/// The process-wide instrument registry. Get* registers on first use and
/// returns a reference that stays valid (and at a stable address) for the
/// process lifetime. Names must match [a-z0-9._]+ by convention; they are
/// emitted into JSON unescaped.
class MetricsRegistry {
 public:
  /// The global registry (never destroyed, safe during static teardown).
  static MetricsRegistry& Global();

  /// The counter registered under `name` (registering it if new).
  Counter& GetCounter(std::string_view name);

  /// The gauge registered under `name` (registering it if new).
  Gauge& GetGauge(std::string_view name);

  /// The histogram registered under `name` (registering it if new).
  Histogram& GetHistogram(std::string_view name);

  /// Consistent point-in-time copy of every registered instrument.
  RegistrySnapshot Snapshot() const;

  /// Zeroes every instrument without unregistering it (cached references
  /// stay valid). Meant for test/bench isolation, not for concurrent use
  /// with live recording.
  void ResetAll();

  MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;
  ~MetricsRegistry();

 private:
  struct Impl;
  /// Pimpl keeps <mutex>/<deque>/<map> out of this widely-included header.
  /// Constructed eagerly in the constructor and never reassigned, so
  /// concurrent first-time lookups and snapshots never race on it.
  Impl* impl_;
  Impl& impl();
};

/// Per-thread trace sink: while alive, every TraceSpan opened on the
/// constructing thread appends one event. Install around a single query
/// to see where it spent its time (`indoor_tool distance ... --trace`).
/// Not thread-safe: construct, run, and read on one thread.
class QueryTrace {
 public:
  /// One completed span.
  struct Event {
    /// Static span label (must outlive the trace; string literals only).
    const char* name;
    /// Span start, nanoseconds since the trace was installed.
    uint64_t start_ns;
    /// Span duration in nanoseconds.
    uint64_t duration_ns;
    /// Nesting depth at the time the span opened (0 = outermost).
    int depth;
  };

  /// Installs this trace as the calling thread's active sink (stacking on
  /// top of any previously active trace).
  QueryTrace();
  /// Uninstalls, restoring the previously active trace.
  ~QueryTrace();

  QueryTrace(const QueryTrace&) = delete;
  QueryTrace& operator=(const QueryTrace&) = delete;

  /// The calling thread's active trace, or nullptr.
  static QueryTrace* Active();

  /// Completed spans in completion order (inner spans precede the spans
  /// that contain them).
  const std::vector<Event>& events() const { return events_; }

  /// The instant this trace was installed (event start_ns values are
  /// relative to it). The trace exporter uses it to rebase per-query
  /// traces onto one shared timeline.
  std::chrono::steady_clock::time_point origin() const { return origin_; }

  /// Indented span tree, one line per event, sorted by start time.
  void WriteReport(std::FILE* out) const;

  // Implementation hooks for TraceSpan (not part of the public surface).

  /// Opens a nesting level; returns the depth the span runs at.
  int EnterSpan() { return depth_++; }
  /// Closes a nesting level and appends the completed event.
  void ExitSpan(const char* name, uint64_t start_ns, uint64_t duration_ns,
                int depth);
  /// Nanoseconds since this trace was installed.
  uint64_t NowNs() const;

 private:
  std::chrono::steady_clock::time_point origin_;
  std::vector<Event> events_;
  int depth_ = 0;
  QueryTrace* prev_ = nullptr;
};

/// RAII span: on destruction, records its elapsed nanoseconds into an
/// optional histogram and into the thread's active QueryTrace (if any).
/// With neither — no active trace and a null histogram — construction and
/// destruction read no clocks and cost one thread-local load plus a
/// branch, which is what makes always-on sub-phase spans affordable.
class TraceSpan {
 public:
  /// Opens a span named `name` (a string literal), optionally recording
  /// its duration into `hist`.
  explicit TraceSpan(const char* name, Histogram* hist = nullptr)
      : name_(name), hist_(hist), trace_(QueryTrace::Active()) {
    if (trace_ == nullptr && hist_ == nullptr) return;
    if (trace_ != nullptr) {
      depth_ = trace_->EnterSpan();
      start_ns_ = trace_->NowNs();
    }
    start_ = std::chrono::steady_clock::now();
  }

  ~TraceSpan() {
    if (trace_ == nullptr && hist_ == nullptr) return;
    const uint64_t ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
    if (hist_ != nullptr) hist_->Record(ns);
    if (trace_ != nullptr) trace_->ExitSpan(name_, start_ns_, ns, depth_);
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  Histogram* hist_;
  QueryTrace* trace_;
  int depth_ = 0;
  uint64_t start_ns_ = 0;
  std::chrono::steady_clock::time_point start_;
};

/// RAII timer that always records into its histogram (no trace
/// interaction); the plain building block when tracing is not wanted.
class ScopedTimer {
 public:
  /// Starts timing into `hist`.
  explicit ScopedTimer(Histogram& hist)
      : hist_(&hist), start_(std::chrono::steady_clock::now()) {}

  ~ScopedTimer() {
    hist_->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count()));
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace metrics
}  // namespace indoor

// ---------------------------------------------------------------------------
// Instrumentation macros. Each caches its instrument reference in a
// function-local static (one registry lookup per site per process), then
// performs only relaxed atomic work. All of them expand to NOTHING when
// INDOOR_METRICS_ENABLED is not defined (CMake -DINDOOR_METRICS=OFF).

#define INDOOR_METRICS_CONCAT_(a, b) a##b
#define INDOOR_METRICS_CONCAT(a, b) INDOOR_METRICS_CONCAT_(a, b)

#ifdef INDOOR_METRICS_ENABLED

/// Adds `delta` to the counter registered under `name`.
#define INDOOR_COUNTER_ADD(name, delta)                                     \
  do {                                                                      \
    static ::indoor::metrics::Counter& INDOOR_METRICS_CONCAT(               \
        indoor_metrics_c_, __LINE__) =                                      \
        ::indoor::metrics::MetricsRegistry::Global().GetCounter(name);      \
    INDOOR_METRICS_CONCAT(indoor_metrics_c_, __LINE__)                      \
        .Add(static_cast<uint64_t>(delta));                                 \
  } while (0)

/// Adds 1 to the counter registered under `name`.
#define INDOOR_COUNTER_INC(name) INDOOR_COUNTER_ADD(name, 1)

/// Sets the gauge registered under `name` to `value`.
#define INDOOR_GAUGE_SET(name, value)                                       \
  do {                                                                      \
    static ::indoor::metrics::Gauge& INDOOR_METRICS_CONCAT(                 \
        indoor_metrics_g_, __LINE__) =                                      \
        ::indoor::metrics::MetricsRegistry::Global().GetGauge(name);        \
    INDOOR_METRICS_CONCAT(indoor_metrics_g_, __LINE__)                      \
        .Set(static_cast<double>(value));                                   \
  } while (0)

/// Records `value` into the histogram registered under `name`.
#define INDOOR_HISTOGRAM_RECORD(name, value)                                \
  do {                                                                      \
    static ::indoor::metrics::Histogram& INDOOR_METRICS_CONCAT(             \
        indoor_metrics_h_, __LINE__) =                                      \
        ::indoor::metrics::MetricsRegistry::Global().GetHistogram(name);    \
    INDOOR_METRICS_CONCAT(indoor_metrics_h_, __LINE__)                      \
        .Record(static_cast<uint64_t>(value));                              \
  } while (0)

/// Opens a scope-lifetime span that records into the thread's active
/// QueryTrace only (no histogram; near-free when no trace is installed).
#define INDOOR_TRACE_SPAN(span_name)                                        \
  ::indoor::metrics::TraceSpan INDOOR_METRICS_CONCAT(indoor_metrics_s_,     \
                                                     __LINE__)(span_name)

/// Opens a scope-lifetime span that records its nanoseconds into the
/// histogram registered under `hist_name` AND into any active QueryTrace.
/// The query-entry-point instrumentation primitive.
#define INDOOR_LATENCY_SPAN(span_name, hist_name)                           \
  static ::indoor::metrics::Histogram& INDOOR_METRICS_CONCAT(               \
      indoor_metrics_sh_, __LINE__) =                                       \
      ::indoor::metrics::MetricsRegistry::Global().GetHistogram(hist_name); \
  ::indoor::metrics::TraceSpan INDOOR_METRICS_CONCAT(indoor_metrics_s_,     \
                                                     __LINE__)(             \
      span_name, &INDOOR_METRICS_CONCAT(indoor_metrics_sh_, __LINE__))

/// Compiles its arguments only when metrics are enabled — for local
/// accumulator variables and their flushes around hot loops, so the OFF
/// build's code is bit-identical to the never-instrumented code.
#define INDOOR_METRICS_ONLY(...) __VA_ARGS__

#else  // !INDOOR_METRICS_ENABLED

#define INDOOR_COUNTER_ADD(name, delta) \
  do {                                  \
  } while (0)
#define INDOOR_COUNTER_INC(name) \
  do {                           \
  } while (0)
#define INDOOR_GAUGE_SET(name, value) \
  do {                                \
  } while (0)
#define INDOOR_HISTOGRAM_RECORD(name, value) \
  do {                                       \
  } while (0)
#define INDOOR_TRACE_SPAN(span_name) \
  do {                               \
  } while (0)
#define INDOOR_LATENCY_SPAN(span_name, hist_name) \
  do {                                            \
  } while (0)
#define INDOOR_METRICS_ONLY(...)

#endif  // INDOOR_METRICS_ENABLED

#endif  // INDOOR_UTIL_METRICS_H_
