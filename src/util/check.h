// CHECK-style invariant macros. Used for programming errors that must never
// occur in a correct program (index bounds, violated preconditions on
// internal calls). User-facing fallible paths use Status/Result instead.

#ifndef INDOOR_UTIL_CHECK_H_
#define INDOOR_UTIL_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace indoor {
namespace internal {

/// Accumulates a failure message; aborts the process in the destructor.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* kind, const char* file, int line,
                     const char* condition) {
    stream_ << kind << " failed at " << file << ":" << line << ": "
            << condition;
  }

  [[noreturn]] ~CheckFailureStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    stream_ << " " << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace indoor

#define INDOOR_CHECK(cond)                                     \
  if (cond) {                                                  \
  } else                                                       \
    ::indoor::internal::CheckFailureStream("INDOOR_CHECK",     \
                                           __FILE__, __LINE__, #cond)

#define INDOOR_DCHECK(cond) INDOOR_CHECK(cond)

#endif  // INDOOR_UTIL_CHECK_H_
