// Result<T>: a value-or-Status, the library's StatusOr analogue.

#ifndef INDOOR_UTIL_RESULT_H_
#define INDOOR_UTIL_RESULT_H_

#include <optional>
#include <utility>

#include "util/check.h"
#include "util/status.h"

namespace indoor {

/// Holds either a T or a non-OK Status. Accessing the value of an errored
/// Result is a checked invariant violation (aborts), mirroring StatusOr.
template <typename T>
class Result {
 public:
  /// Implicit from value: enables `return value;` in Result-returning code.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from error Status. Constructing from an OK status is invalid.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    INDOOR_CHECK(!status_.ok()) << "Result constructed from OK Status";
  }

  bool ok() const { return value_.has_value(); }

  const Status& status() const { return status_; }

  const T& value() const& {
    INDOOR_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    INDOOR_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    INDOOR_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when errored.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ engaged.
};

}  // namespace indoor

/// Unwraps a Result into `lhs`, propagating errors.
#define INDOOR_ASSIGN_OR_RETURN(lhs, expr)          \
  auto INDOOR_CONCAT_(_res_, __LINE__) = (expr);    \
  if (!INDOOR_CONCAT_(_res_, __LINE__).ok())        \
    return INDOOR_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(INDOOR_CONCAT_(_res_, __LINE__)).value()

#define INDOOR_CONCAT_INNER_(a, b) a##b
#define INDOOR_CONCAT_(a, b) INDOOR_CONCAT_INNER_(a, b)

#endif  // INDOOR_UTIL_RESULT_H_
