#include "util/dashboard.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>

namespace indoor {
namespace dash {

void AppendHtmlEscaped(std::string* out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '&': out->append("&amp;"); break;
      case '<': out->append("&lt;"); break;
      case '>': out->append("&gt;"); break;
      case '"': out->append("&quot;"); break;
      case '\'': out->append("&#39;"); break;
      default: out->push_back(c);
    }
  }
}

namespace {

using tseries::IntervalSample;
using tseries::IntervalStats;
using tseries::Recording;

// Distinguishable on the dark background; recordings cycle through them.
const char* const kSeriesColors[] = {"#4fc1ff", "#ff8c5a", "#7ee787",
                                     "#d2a8ff", "#ffd75f", "#ff7b9c"};

const char* SeriesColor(size_t i) {
  return kSeriesColors[i % (sizeof(kSeriesColors) / sizeof(kSeriesColors[0]))];
}

std::string Fmt(double v, int decimals = 1) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string HumanNs(double ns) {
  char buf[64];
  if (ns < 1e3) {
    std::snprintf(buf, sizeof(buf), "%.0fns", ns);
  } else if (ns < 1e6) {
    std::snprintf(buf, sizeof(buf), "%.1fus", ns / 1e3);
  } else if (ns < 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fms", ns / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", ns / 1e9);
  }
  return buf;
}

/// One polyline sparkline. The path carries class="sparkline" — the CI
/// smoke validator checks these paths are present and non-empty.
void AppendSparkline(std::string* out, const std::vector<double>& values,
                     const char* color) {
  constexpr double kW = 640.0, kH = 72.0, kPad = 4.0;
  out->append("<svg class=\"spark\" viewBox=\"0 0 640 72\" "
              "preserveAspectRatio=\"none\">");
  if (!values.empty()) {
    double lo = values[0], hi = values[0];
    for (const double v : values) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    const double span = hi - lo;
    std::string d;
    for (size_t i = 0; i < values.size(); ++i) {
      const double x =
          values.size() == 1
              ? kW / 2.0
              : kPad + (kW - 2 * kPad) * static_cast<double>(i) /
                           static_cast<double>(values.size() - 1);
      const double y =
          span <= 0.0
              ? kH / 2.0
              : kH - kPad - (kH - 2 * kPad) * (values[i] - lo) / span;
      d += (i == 0 ? "M" : "L") + Fmt(x, 1) + "," + Fmt(y, 1);
    }
    if (values.size() == 1) d += "L" + Fmt(kW / 2.0 + 1.0, 1) + "," + Fmt(kH / 2.0, 1);
    out->append("<path class=\"sparkline\" d=\"");
    out->append(d);
    out->append("\" fill=\"none\" stroke=\"");
    out->append(color);
    out->append("\" stroke-width=\"1.5\"/>");
  }
  out->append("</svg>");
}

double TotalSeconds(const Recording& r) {
  double seconds = 0.0;
  for (const IntervalSample& s : r.samples) {
    seconds += static_cast<double>(s.duration_us) / 1e6;
  }
  return seconds;
}

uint64_t TotalQueries(const Recording& r) {
  uint64_t queries = 0;
  for (const IntervalSample& s : r.samples) {
    queries += tseries::ComputeIntervalStats(s).queries;
  }
  return queries;
}

uint64_t CounterTotal(const Recording& r, std::string_view name) {
  uint64_t total = 0;
  for (const IntervalSample& s : r.samples) {
    total += tseries::CounterValue(s.delta, name);
  }
  return total;
}

/// Whole-recording histogram: interval deltas summed back together.
metrics::HistogramSnapshot AggregateHistogram(const Recording& r,
                                              std::string_view name) {
  metrics::HistogramSnapshot agg;
  agg.name = std::string(name);
  for (const IntervalSample& s : r.samples) {
    const metrics::HistogramSnapshot* h = tseries::FindHistogram(s.delta, name);
    if (h == nullptr) continue;
    agg.count += h->count;
    agg.sum += h->sum;
    agg.max = std::max(agg.max, h->max);
    if (agg.buckets.empty()) agg.buckets.resize(h->buckets.size(), 0);
    for (size_t i = 0; i < h->buckets.size() && i < agg.buckets.size(); ++i) {
      agg.buckets[i] += h->buckets[i];
    }
  }
  return agg;
}

void OpenSection(std::string* out, const char* id, const std::string& title) {
  out->append("<section id=\"");
  out->append(id);
  out->append("\"><h2>");
  AppendHtmlEscaped(out, title);
  out->append("</h2>");
}

void AppendLegendEntry(std::string* out, size_t i, const std::string& label) {
  out->append("<span class=\"key\" style=\"color:");
  out->append(SeriesColor(i));
  out->append("\">&#9632; ");
  AppendHtmlEscaped(out, label);
  out->append("</span> ");
}

void AppendSummary(std::string* out,
                   const std::vector<Recording>& recordings) {
  OpenSection(out, "summary", "Recordings");
  out->append("<table><tr><th>recording</th><th>intervals</th>"
              "<th>duration</th><th>queries</th><th>avg QPS</th>"
              "<th>interval</th></tr>");
  for (size_t i = 0; i < recordings.size(); ++i) {
    const Recording& r = recordings[i];
    const double seconds = TotalSeconds(r);
    const uint64_t queries = TotalQueries(r);
    out->append("<tr><td style=\"color:");
    out->append(SeriesColor(i));
    out->append("\">");
    AppendHtmlEscaped(out, r.label.empty() ? "(unnamed)" : r.label);
    out->append("</td><td>" + std::to_string(r.samples.size()) + "</td><td>" +
                Fmt(seconds, 2) + "s</td><td>" + std::to_string(queries) +
                "</td><td>" +
                Fmt(seconds > 0 ? static_cast<double>(queries) / seconds : 0.0,
                    1) +
                "</td><td>" + std::to_string(r.interval_ms) + "ms</td></tr>");
    if (!r.context.empty()) {
      out->append("<tr><td></td><td colspan=\"5\" class=\"ctx\">");
      AppendHtmlEscaped(out, r.context);
      out->append("</td></tr>");
    }
  }
  out->append("</table></section>");
}

void AppendQpsSection(std::string* out,
                      const std::vector<Recording>& recordings) {
  OpenSection(out, "qps", "Throughput (per-interval QPS)");
  for (size_t i = 0; i < recordings.size(); ++i) {
    const Recording& r = recordings[i];
    std::vector<double> qps;
    double peak = 0.0;
    qps.reserve(r.samples.size());
    for (const IntervalSample& s : r.samples) {
      qps.push_back(tseries::ComputeIntervalStats(s).qps);
      peak = std::max(peak, qps.back());
    }
    AppendLegendEntry(out, i, r.label);
    out->append("<span class=\"dim\">peak " + Fmt(peak, 1) + " q/s</span>");
    AppendSparkline(out, qps, SeriesColor(i));
  }
  out->append("</section>");
}

void AppendLatencySection(std::string* out,
                          const std::vector<Recording>& recordings) {
  OpenSection(out, "latency", "Latency (per-interval percentiles)");
  std::vector<std::string> kinds;
  for (const Recording& r : recordings) {
    for (std::string& kind : tseries::ActiveQueryKinds(r)) {
      kinds.push_back(std::move(kind));
    }
  }
  std::sort(kinds.begin(), kinds.end());
  kinds.erase(std::unique(kinds.begin(), kinds.end()), kinds.end());
  if (kinds.empty()) {
    out->append("<p class=\"dim\">no query latency histograms in these "
                "recordings</p>");
  }
  for (const std::string& kind : kinds) {
    out->append("<h3>");
    AppendHtmlEscaped(out, kind);
    out->append("</h3>");
    for (const double q : {0.50, 0.99}) {
      for (size_t i = 0; i < recordings.size(); ++i) {
        const Recording& r = recordings[i];
        std::vector<double> series;
        double worst = 0.0;
        series.reserve(r.samples.size());
        for (const IntervalSample& s : r.samples) {
          series.push_back(tseries::QueryPercentileNs(s, kind, q) / 1e6);
          worst = std::max(worst, series.back());
        }
        AppendLegendEntry(out, i,
                          (q == 0.50 ? "p50 " : "p99 ") + r.label);
        out->append("<span class=\"dim\">worst interval " +
                    HumanNs(worst * 1e6) + "</span>");
        AppendSparkline(out, series, SeriesColor(i));
      }
    }
  }
  out->append("</section>");
}

void AppendSloSection(std::string* out,
                      const std::vector<Recording>& recordings,
                      const DashboardOptions& options) {
  OpenSection(out, "slo", "SLO burn rates");
  out->append("<p class=\"dim\">burn = observed error rate / allowed budget; "
              "1.0 spends the budget exactly at the sustainable pace. "
              "Windows: fast " + Fmt(options.slo.fast_window_s, 0) + "s / slow " +
              Fmt(options.slo.slow_window_s, 0) + "s, alert at " +
              Fmt(options.slo.alert_burn, 1) + "x on both.</p>");
  out->append("<table><tr><th>recording</th><th>objective</th><th>target</th>"
              "<th>compliance</th><th>burn (fast)</th><th>burn (slow)</th>"
              "<th>status</th></tr>");
  for (size_t i = 0; i < recordings.size(); ++i) {
    const Recording& r = recordings[i];
    const slo::SloReport report = slo::Evaluate(options.slo, r.samples);
    for (const slo::ObjectiveStatus& status : report.objectives) {
      out->append("<tr><td style=\"color:");
      out->append(SeriesColor(i));
      out->append("\">");
      AppendHtmlEscaped(out, r.label);
      out->append("</td><td>");
      AppendHtmlEscaped(out, status.objective.name);
      out->append("</td><td>" + Fmt(status.objective.target * 100.0, 2) +
                  "% &le; " +
                  HumanNs(static_cast<double>(status.objective.threshold_ns)) +
                  "</td><td>" + Fmt(status.compliance * 100.0, 3) +
                  "%</td><td>" + Fmt(status.fast.burn_rate, 2) + "</td><td>" +
                  Fmt(status.slow.burn_rate, 2) + "</td><td>");
      out->append(status.alerting ? "<b class=\"alert\">ALERT</b>"
                                  : "<span class=\"ok\">ok</span>");
      out->append("</td></tr>");
    }
  }
  out->append("</table></section>");
}

void AppendHotnessSection(std::string* out,
                          const std::vector<Recording>& recordings) {
  OpenSection(out, "hotness", "Partition hotness (visits over the recording)");
  bool any = false;
  for (size_t i = 0; i < recordings.size(); ++i) {
    const Recording& r = recordings[i];
    std::map<uint32_t, uint64_t> visits;
    uint32_t max_slot = 0;
    for (const IntervalSample& s : r.samples) {
      for (const tseries::HotDelta& hot : s.hot) {
        visits[hot.slot] += hot.visits;
        max_slot = std::max(max_slot, hot.slot);
      }
    }
    if (visits.empty()) continue;
    any = true;
    uint64_t peak = 0;
    for (const auto& [slot, v] : visits) peak = std::max(peak, v);
    AppendLegendEntry(out, i, r.label);
    out->append("<span class=\"dim\">" + std::to_string(visits.size()) +
                " active partitions, hottest " + std::to_string(peak) +
                " visits</span><br>");
    const uint32_t slots = max_slot + 1;
    const uint32_t cols = std::max<uint32_t>(
        1, static_cast<uint32_t>(std::ceil(std::sqrt(slots))));
    const uint32_t rows = (slots + cols - 1) / cols;
    constexpr int kCell = 12;
    out->append("<svg class=\"heatmap\" width=\"" +
                std::to_string(cols * kCell) + "\" height=\"" +
                std::to_string(rows * kCell) + "\">");
    const double log_peak = std::log1p(static_cast<double>(peak));
    for (const auto& [slot, v] : visits) {
      const double intensity =
          log_peak > 0.0 ? std::log1p(static_cast<double>(v)) / log_peak : 1.0;
      const int red = 40 + static_cast<int>(215.0 * intensity);
      const int green = 44 + static_cast<int>(40.0 * (1.0 - intensity));
      const int blue = 80 - static_cast<int>(20.0 * intensity);
      out->append(
          "<rect class=\"hotcell\" x=\"" +
          std::to_string((slot % cols) * kCell) + "\" y=\"" +
          std::to_string((slot / cols) * kCell) + "\" width=\"11\" "
          "height=\"11\" fill=\"rgb(" +
          std::to_string(red) + "," + std::to_string(green) + "," +
          std::to_string(blue) + ")\"><title>partition " +
          std::to_string(slot) + ": " + std::to_string(v) +
          " visits</title></rect>");
    }
    out->append("</svg>");
  }
  if (!any) {
    out->append("<p class=\"dim\">no partition-hotness telemetry in these "
                "recordings (record with a hotness-enabled serve)</p>");
  }
  out->append("</section>");
}

/// Baseline-vs-candidate diff: the first and last recordings. Rates and
/// per-query counter costs, sorted by how much each counter moved — the
/// "why" column next to the QPS/p99 "what".
void AppendAttributionSection(std::string* out,
                              const std::vector<Recording>& recordings) {
  if (recordings.size() < 2) return;
  const Recording& a = recordings.front();
  const Recording& b = recordings.back();
  OpenSection(out, "attribution",
              "Attribution: " + a.label + " vs " + b.label);
  const double sec_a = TotalSeconds(a), sec_b = TotalSeconds(b);
  const double q_a = static_cast<double>(TotalQueries(a));
  const double q_b = static_cast<double>(TotalQueries(b));
  const double qps_a = sec_a > 0 ? q_a / sec_a : 0.0;
  const double qps_b = sec_b > 0 ? q_b / sec_b : 0.0;
  const auto pct = [](double from, double to) {
    if (from <= 0.0) return std::string("&mdash;");
    const double d = (to - from) / from * 100.0;
    return std::string(d >= 0 ? "+" : "") + Fmt(d, 1) + "%";
  };
  out->append("<table><tr><th>signal</th><th>");
  AppendHtmlEscaped(out, a.label);
  out->append("</th><th>");
  AppendHtmlEscaped(out, b.label);
  out->append("</th><th>&Delta;</th></tr>");
  out->append("<tr><td>QPS</td><td>" + Fmt(qps_a, 1) + "</td><td>" +
              Fmt(qps_b, 1) + "</td><td>" + pct(qps_a, qps_b) + "</td></tr>");
  std::vector<std::string> kinds = tseries::ActiveQueryKinds(a);
  for (std::string& kind : tseries::ActiveQueryKinds(b)) {
    kinds.push_back(std::move(kind));
  }
  std::sort(kinds.begin(), kinds.end());
  kinds.erase(std::unique(kinds.begin(), kinds.end()), kinds.end());
  for (const std::string& kind : kinds) {
    const std::string hist = "query." + kind + ".latency_ns";
    const double p99_a = AggregateHistogram(a, hist).Percentile(0.99);
    const double p99_b = AggregateHistogram(b, hist).Percentile(0.99);
    out->append("<tr><td>p99 ");
    AppendHtmlEscaped(out, kind);
    out->append("</td><td>" + HumanNs(p99_a) + "</td><td>" + HumanNs(p99_b) +
                "</td><td>" + pct(p99_a, p99_b) + "</td></tr>");
  }
  out->append("</table>");

  // Per-query counter costs, most-moved first: which work items grew or
  // shrank between the runs.
  std::set<std::string> names;
  for (const Recording* r : {&a, &b}) {
    for (const IntervalSample& s : r->samples) {
      for (const auto& [name, value] : s.delta.counters) {
        if (value != 0) names.insert(name);
      }
    }
  }
  struct Row {
    std::string name;
    double per_a, per_b, rel;
  };
  std::vector<Row> rows;
  for (const std::string& name : names) {
    const uint64_t total_a = CounterTotal(a, name);
    const uint64_t total_b = CounterTotal(b, name);
    if (total_a + total_b < 50) continue;  // noise floor
    const double per_a = q_a > 0 ? static_cast<double>(total_a) / q_a : 0.0;
    const double per_b = q_b > 0 ? static_cast<double>(total_b) / q_b : 0.0;
    const double rel = per_a > 0.0 ? (per_b - per_a) / per_a
                                   : (per_b > 0.0 ? 1e9 : 0.0);
    rows.push_back({name, per_a, per_b, rel});
  }
  std::sort(rows.begin(), rows.end(), [](const Row& x, const Row& y) {
    return std::fabs(x.rel) > std::fabs(y.rel);
  });
  constexpr size_t kMaxRows = 24;
  out->append("<h3>per-query counter costs (most moved first)</h3>");
  out->append("<table><tr><th>counter / query</th><th>");
  AppendHtmlEscaped(out, a.label);
  out->append("</th><th>");
  AppendHtmlEscaped(out, b.label);
  out->append("</th><th>&Delta;</th></tr>");
  for (size_t i = 0; i < rows.size() && i < kMaxRows; ++i) {
    const Row& row = rows[i];
    out->append("<tr><td>");
    AppendHtmlEscaped(out, row.name);
    out->append("</td><td>" + Fmt(row.per_a, 2) + "</td><td>" +
                Fmt(row.per_b, 2) + "</td><td>" + pct(row.per_a, row.per_b) +
                "</td></tr>");
  }
  out->append("</table>");
  if (rows.size() > kMaxRows) {
    out->append("<p class=\"dim\">" + std::to_string(rows.size() - kMaxRows) +
                " counters below the movement cut omitted</p>");
  }
  out->append("</section>");
}

}  // namespace

std::string RenderDashboard(const std::vector<tseries::Recording>& recordings,
                            const DashboardOptions& options) {
  std::string out;
  out.reserve(64 * 1024);
  out.append("<!doctype html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">");
  out.append("<title>");
  AppendHtmlEscaped(&out, options.title);
  out.append("</title><style>"
             "body{background:#10141c;color:#d8dee9;font:13px/1.5 "
             "ui-monospace,monospace;margin:24px;max-width:960px}"
             "h1{font-size:18px}h2{font-size:15px;border-bottom:1px solid "
             "#2a3040;padding-bottom:4px;margin-top:28px}h3{font-size:13px;"
             "color:#9aa4b2}"
             "table{border-collapse:collapse;margin:8px 0}"
             "td,th{border:1px solid #2a3040;padding:3px 10px;text-align:left}"
             "th{color:#9aa4b2}"
             "svg.spark{display:block;width:100%;height:72px;background:#161b26;"
             "margin:2px 0 10px}"
             "svg.heatmap{display:block;background:#161b26;margin:4px 0 12px}"
             ".dim{color:#6b7485}.ctx{color:#6b7485;white-space:pre-wrap}"
             ".alert{color:#ff5540}.ok{color:#7ee787}.key{font-weight:bold}"
             "</style></head><body>\n<h1>");
  AppendHtmlEscaped(&out, options.title);
  out.append("</h1>");
  if (recordings.empty()) {
    out.append("<p class=\"dim\">no recordings</p></body></html>\n");
    return out;
  }
  AppendSummary(&out, recordings);
  AppendQpsSection(&out, recordings);
  AppendLatencySection(&out, recordings);
  AppendSloSection(&out, recordings, options);
  AppendHotnessSection(&out, recordings);
  AppendAttributionSection(&out, recordings);
  out.append("</body></html>\n");
  return out;
}

Status WriteDashboardFile(const std::vector<tseries::Recording>& recordings,
                          const std::string& path,
                          const DashboardOptions& options) {
  const std::string html = RenderDashboard(recordings, options);
  std::FILE* out = std::fopen(path.c_str(), "wb");
  if (out == nullptr) {
    return Status::IOError("cannot open dashboard '" + path + "'");
  }
  const size_t written = std::fwrite(html.data(), 1, html.size(), out);
  const bool bad = std::ferror(out) != 0 || written != html.size();
  std::fclose(out);
  return bad ? Status::IOError("dashboard write failed") : Status::OK();
}

}  // namespace dash
}  // namespace indoor
