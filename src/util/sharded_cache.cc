#include "util/sharded_cache.h"

#include <string>

namespace indoor {
namespace internal {

CacheCounters RegisterCacheCounters([[maybe_unused]] std::string_view prefix) {
  CacheCounters counters;
#ifdef INDOOR_METRICS_ENABLED
  std::string name(prefix);
  const size_t base = name.size();
  metrics::MetricsRegistry& registry = metrics::MetricsRegistry::Global();
  name += ".hits";
  counters.hits = &registry.GetCounter(name);
  name.resize(base);
  name += ".misses";
  counters.misses = &registry.GetCounter(name);
  name.resize(base);
  name += ".evictions";
  counters.evictions = &registry.GetCounter(name);
  name.resize(base);
  name += ".insertions";
  counters.insertions = &registry.GetCounter(name);
#endif
  return counters;
}

size_t NormalizeShardCount(size_t n) {
  if (n < 1) n = 1;
  if (n > 256) n = 256;
  size_t pow2 = 1;
  while (pow2 < n) pow2 <<= 1;
  return pow2;
}

}  // namespace internal
}  // namespace indoor
