#include "util/metrics.h"

#include <algorithm>
#include <bit>
#include <deque>
#include <map>
#include <mutex>

namespace indoor {
namespace metrics {

// ------------------------------------------------------------------ Histogram

size_t Histogram::BucketIndex(uint64_t value) {
  return std::min<size_t>(std::bit_width(value), kNumBuckets - 1);
}

uint64_t Histogram::BucketLowerBound(size_t i) {
  return i == 0 ? 0 : uint64_t{1} << (i - 1);
}

uint64_t Histogram::BucketUpperBound(size_t i) {
  return uint64_t{1} << i;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

HistogramSnapshot HistogramSnapshot::DeltaSince(
    const HistogramSnapshot& prev) const {
  HistogramSnapshot delta = *this;
  if (prev.buckets.size() != buckets.size()) return delta;  // not the same
  // A histogram whose total shrank was reset between the snapshots; the
  // current snapshot IS the interval (everything since the reset).
  // Subtracting would clamp every bucket to zero and erase real samples.
  if (count < prev.count) return delta;
  delta.count -= prev.count;
  delta.sum -= std::min(prev.sum, delta.sum);
  for (size_t i = 0; i < delta.buckets.size(); ++i) {
    delta.buckets[i] -= std::min(prev.buckets[i], delta.buckets[i]);
  }
  return delta;
}

double HistogramSnapshot::CountBelow(double value) const {
  if (count == 0 || value < 0.0) return 0.0;
  if (value >= static_cast<double>(max)) return static_cast<double>(count);
  double below = 0.0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    if (i == 0) {  // bucket 0 holds exactly the value 0 <= value
      below += static_cast<double>(buckets[i]);
      continue;
    }
    const double lo = static_cast<double>(Histogram::BucketLowerBound(i));
    const double hi = static_cast<double>(Histogram::BucketUpperBound(i));
    if (value >= hi) {
      below += static_cast<double>(buckets[i]);
    } else if (value > lo) {
      // The threshold lands inside this bucket: assume samples spread
      // uniformly over [lo, hi), the same model Percentile() uses.
      below += static_cast<double>(buckets[i]) * (value - lo) / (hi - lo);
    }
  }
  return std::min(below, static_cast<double>(count));
}

double HistogramSnapshot::Percentile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count);
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    if (static_cast<double>(seen + buckets[i]) >= rank) {
      const double lo = static_cast<double>(Histogram::BucketLowerBound(i));
      const double hi = static_cast<double>(Histogram::BucketUpperBound(i));
      const double frac =
          (rank - static_cast<double>(seen)) / static_cast<double>(buckets[i]);
      // The true quantile can never exceed the observed maximum; without the
      // clamp, q = 1.0 would report the landing bucket's upper bound.
      return std::min(lo + std::clamp(frac, 0.0, 1.0) * (hi - lo),
                      static_cast<double>(max));
    }
    seen += buckets[i];
  }
  return static_cast<double>(max);
}

// ------------------------------------------------------------------- Registry

struct MetricsRegistry::Impl {
  mutable std::mutex mu;
  // Deques keep element addresses stable across registration; the maps own
  // the lookup. Instruments are never erased.
  std::deque<Counter> counters;
  std::deque<Gauge> gauges;
  std::deque<Histogram> histograms;
  std::map<std::string, Counter*, std::less<>> counter_index;
  std::map<std::string, Gauge*, std::less<>> gauge_index;
  std::map<std::string, Histogram*, std::less<>> histogram_index;
};

MetricsRegistry& MetricsRegistry::Global() {
  // Intentionally leaked: instrumentation sites cache references and may
  // fire during static destruction.
  static MetricsRegistry* global = new MetricsRegistry();
  return *global;
}

// Eager construction: Global()'s function-local static serializes the one
// construction, after which impl_ is immutable — so concurrent first-time
// GetCounter/GetGauge/GetHistogram/Snapshot calls never race on it.
MetricsRegistry::MetricsRegistry() : impl_(new Impl()) {}

MetricsRegistry::Impl& MetricsRegistry::impl() { return *impl_; }

MetricsRegistry::~MetricsRegistry() { delete impl_; }

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  const auto it = im.counter_index.find(name);
  if (it != im.counter_index.end()) return *it->second;
  Counter& c = im.counters.emplace_back();
  im.counter_index.emplace(std::string(name), &c);
  return c;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  const auto it = im.gauge_index.find(name);
  if (it != im.gauge_index.end()) return *it->second;
  Gauge& g = im.gauges.emplace_back();
  im.gauge_index.emplace(std::string(name), &g);
  return g;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  const auto it = im.histogram_index.find(name);
  if (it != im.histogram_index.end()) return *it->second;
  Histogram& h = im.histograms.emplace_back();
  im.histogram_index.emplace(std::string(name), &h);
  return h;
}

RegistrySnapshot MetricsRegistry::Snapshot() const {
  RegistrySnapshot snap;
  const Impl* im = impl_;
  std::lock_guard<std::mutex> lock(im->mu);
  snap.counters.reserve(im->counter_index.size());
  for (const auto& [name, c] : im->counter_index) {
    snap.counters.emplace_back(name, c->Value());
  }
  snap.gauges.reserve(im->gauge_index.size());
  for (const auto& [name, g] : im->gauge_index) {
    snap.gauges.emplace_back(name, g->Value());
  }
  snap.histograms.reserve(im->histogram_index.size());
  for (const auto& [name, h] : im->histogram_index) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.count = h->Count();
    hs.sum = h->Sum();
    hs.max = h->Max();
    hs.buckets.resize(Histogram::kNumBuckets);
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      hs.buckets[i] = h->BucketCount(i);
    }
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

void MetricsRegistry::ResetAll() {
  const Impl* im = impl_;
  std::lock_guard<std::mutex> lock(im->mu);
  for (auto& [name, c] : im->counter_index) c->Reset();
  for (auto& [name, g] : im->gauge_index) g->Reset();
  for (auto& [name, h] : im->histogram_index) h->Reset();
}

RegistrySnapshot RegistrySnapshot::DeltaSince(
    const RegistrySnapshot& prev) const {
  RegistrySnapshot delta = *this;
  // Every list is sorted by name, so a linear merge pairs instruments up.
  size_t j = 0;
  for (auto& [name, value] : delta.counters) {
    while (j < prev.counters.size() && prev.counters[j].first < name) ++j;
    if (j < prev.counters.size() && prev.counters[j].first == name) {
      // A counter reading below its previous snapshot was reset (or
      // wrapped) during the interval; its current value is everything
      // since the restart — report that, not a silent zero.
      if (value >= prev.counters[j].second) value -= prev.counters[j].second;
    }
  }
  j = 0;
  for (auto& hist : delta.histograms) {
    while (j < prev.histograms.size() && prev.histograms[j].name < hist.name) {
      ++j;
    }
    if (j < prev.histograms.size() && prev.histograms[j].name == hist.name) {
      hist = hist.DeltaSince(prev.histograms[j]);
    }
  }
  return delta;
}

// ----------------------------------------------------------- JSON and reports

void AppendJsonEscaped(std::string* out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\b': out->append("\\b"); break;
      case '\f': out->append("\\f"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

namespace {

/// `"name"` with escaping — instrument names are operator-extensible
/// (cache labels, future user-supplied tags), so never emit them raw.
void AppendJsonName(std::string* out, const std::string& name) {
  out->push_back('"');
  AppendJsonEscaped(out, name);
  out->push_back('"');
}

void AppendJsonNumber(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  out->append(buf);
}

/// Nanoseconds rendered with a readable unit (1.23us, 45.6ms, ...).
std::string HumanNs(double ns) {
  char buf[64];
  if (ns < 1e3) {
    std::snprintf(buf, sizeof(buf), "%.0fns", ns);
  } else if (ns < 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fus", ns / 1e3);
  } else if (ns < 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fms", ns / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", ns / 1e9);
  }
  return buf;
}

bool IsNanosecondName(const std::string& name) {
  return name.size() >= 3 && name.compare(name.size() - 3, 3, "_ns") == 0;
}

}  // namespace

std::string RegistrySnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  for (size_t i = 0; i < counters.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    AppendJsonName(&out, counters[i].first);
    out += ": " + std::to_string(counters[i].second);
  }
  out += counters.empty() ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  for (size_t i = 0; i < gauges.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    AppendJsonName(&out, gauges[i].first);
    out += ": ";
    AppendJsonNumber(&out, gauges[i].second);
  }
  out += gauges.empty() ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSnapshot& h = histograms[i];
    out += i == 0 ? "\n    " : ",\n    ";
    AppendJsonName(&out, h.name);
    out += ": {\"count\": " + std::to_string(h.count) +
           ", \"sum\": " + std::to_string(h.sum) +
           ", \"max\": " + std::to_string(h.max) + ", \"p50\": ";
    AppendJsonNumber(&out, h.Percentile(0.50));
    out += ", \"p95\": ";
    AppendJsonNumber(&out, h.Percentile(0.95));
    out += ", \"p99\": ";
    AppendJsonNumber(&out, h.Percentile(0.99));
    out += ", \"p999\": ";
    AppendJsonNumber(&out, h.P999());
    out += ", \"buckets\": [";
    bool first = true;
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      if (h.buckets[b] == 0) continue;
      if (!first) out += ", ";
      first = false;
      out += "{\"le\": " +
             std::to_string(Histogram::BucketUpperBound(b)) +
             ", \"count\": " + std::to_string(h.buckets[b]) + "}";
    }
    out += "]}";
  }
  out += histograms.empty() ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

void RegistrySnapshot::WriteReport(std::FILE* out) const {
  if (!counters.empty()) {
    std::fprintf(out, "counters:\n");
    for (const auto& [name, value] : counters) {
      std::fprintf(out, "  %-36s %12llu\n", name.c_str(),
                   static_cast<unsigned long long>(value));
    }
  }
  if (!gauges.empty()) {
    std::fprintf(out, "gauges:\n");
    for (const auto& [name, value] : gauges) {
      std::fprintf(out, "  %-36s %12.3f\n", name.c_str(), value);
    }
  }
  if (!histograms.empty()) {
    std::fprintf(out, "histograms:\n");
    for (const HistogramSnapshot& h : histograms) {
      if (IsNanosecondName(h.name)) {
        std::fprintf(
            out,
            "  %-36s count=%-8llu mean=%-9s p50=%-9s p95=%-9s p99=%-9s "
            "p99.9=%-9s max=%s\n",
            h.name.c_str(), static_cast<unsigned long long>(h.count),
            HumanNs(h.Mean()).c_str(), HumanNs(h.Percentile(0.50)).c_str(),
            HumanNs(h.Percentile(0.95)).c_str(),
            HumanNs(h.Percentile(0.99)).c_str(), HumanNs(h.P999()).c_str(),
            HumanNs(static_cast<double>(h.max)).c_str());
      } else {
        std::fprintf(
            out,
            "  %-36s count=%-8llu mean=%-9.1f p50=%-9.0f p95=%-9.0f "
            "p99=%-9.0f p99.9=%-9.0f max=%llu\n",
            h.name.c_str(), static_cast<unsigned long long>(h.count),
            h.Mean(), h.Percentile(0.50), h.Percentile(0.95),
            h.Percentile(0.99), h.P999(),
            static_cast<unsigned long long>(h.max));
      }
    }
  }
  if (counters.empty() && gauges.empty() && histograms.empty()) {
    std::fprintf(out,
                 "(registry is empty — was the library built with "
                 "-DINDOOR_METRICS=OFF?)\n");
  }
}

// ----------------------------------------------------------------- QueryTrace

namespace {
thread_local QueryTrace* g_active_trace = nullptr;
}  // namespace

QueryTrace::QueryTrace()
    : origin_(std::chrono::steady_clock::now()), prev_(g_active_trace) {
  g_active_trace = this;
}

QueryTrace::~QueryTrace() { g_active_trace = prev_; }

QueryTrace* QueryTrace::Active() { return g_active_trace; }

uint64_t QueryTrace::NowNs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - origin_)
          .count());
}

void QueryTrace::ExitSpan(const char* name, uint64_t start_ns,
                          uint64_t duration_ns, int depth) {
  --depth_;
  events_.push_back({name, start_ns, duration_ns, depth});
}

void QueryTrace::WriteReport(std::FILE* out) const {
  std::vector<Event> sorted = events_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Event& a, const Event& b) {
                     return a.start_ns < b.start_ns;
                   });
  for (const Event& e : sorted) {
    std::fprintf(out, "  %8.1fus  %*s%-24s %s\n",
                 static_cast<double>(e.start_ns) / 1e3, e.depth * 2, "",
                 e.name, HumanNs(static_cast<double>(e.duration_ns)).c_str());
  }
}

}  // namespace metrics
}  // namespace indoor
