// Portable SIMD helpers for the distance hot paths.
//
// Every routine here is a drop-in replacement for an obvious scalar loop
// and is guaranteed to produce BITWISE IDENTICAL results to that loop: the
// vector lanes perform exactly the per-element IEEE-754 operations
// (additions, subtractions, ordered comparisons) the scalar code performs,
// in an order that cannot change any result (no reassociation, no FMA
// contraction, no reductions over additions). That property is what lets
// the bucket-queue Dijkstra path use these helpers while staying
// bit-identical to the historical binary-heap loop (see
// core/distance/d2d_distance.cc).
//
// Dispatch is compile-time: AVX2 when the translation unit is compiled
// with -mavx2 (or equivalent), else SSE2 (baseline on x86-64), else the
// plain scalar loops. Building with -DINDOOR_NO_SIMD=1 (CMake option
// INDOOR_NO_SIMD) forces the scalar fallback everywhere, which the CI
// matrix uses to prove the vector paths change nothing.

#ifndef INDOOR_UTIL_SIMD_H_
#define INDOOR_UTIL_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <limits>

#if !defined(INDOOR_NO_SIMD) && defined(__AVX2__)
#define INDOOR_SIMD_AVX2 1
#include <immintrin.h>
#elif !defined(INDOOR_NO_SIMD) && defined(__SSE2__)
#define INDOOR_SIMD_SSE2 1
#include <emmintrin.h>
#endif

namespace indoor {
namespace simd {

/// Name of the active implementation, for bench/CI JSON surfaces.
#if defined(INDOOR_SIMD_AVX2)
inline constexpr const char* kImplName = "avx2";
#elif defined(INDOOR_SIMD_SSE2)
inline constexpr const char* kImplName = "sse2";
#else
inline constexpr const char* kImplName = "scalar";
#endif

namespace detail {
inline constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace detail

/// out[i] = base + w[i] for i in [0, n). One independent IEEE addition per
/// lane — bitwise identical to the scalar loop.
inline void AddBase(double base, const double* w, double* out, size_t n) {
  size_t i = 0;
#if defined(INDOOR_SIMD_AVX2)
  const __m256d b = _mm256_set1_pd(base);
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, _mm256_add_pd(b, _mm256_loadu_pd(w + i)));
  }
#elif defined(INDOOR_SIMD_SSE2)
  const __m128d b = _mm_set1_pd(base);
  for (; i + 2 <= n; i += 2) {
    _mm_storeu_pd(out + i, _mm_add_pd(b, _mm_loadu_pd(w + i)));
  }
#endif
  for (; i < n; ++i) out[i] = base + w[i];
}

/// Relaxation filter for one CSR edge span: writes into `out_idx`
/// (ascending) every index i in [0, n) with cand[i] < dist[targets[i]],
/// and returns how many were written. The comparison reads `dist` as it
/// was BEFORE the span is applied, so when the same target appears twice
/// in one span the caller must re-check `cand[i] < dist[to]` while
/// applying — a stale pass is re-filtered there, and a stale fail is
/// impossible (dist only decreases, so an entry filtered out here could
/// never pass later). `out_idx` must hold at least n entries.
inline size_t FilterImprovements(const double* cand, const uint32_t* targets,
                                 const double* dist, size_t n,
                                 uint32_t* out_idx) {
  size_t count = 0;
  size_t i = 0;
#if defined(INDOOR_SIMD_AVX2)
  for (; i + 4 <= n; i += 4) {
    const __m128i idx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(targets + i));
    const __m256d d = _mm256_i32gather_pd(dist, idx, sizeof(double));
    const __m256d c = _mm256_loadu_pd(cand + i);
    int m = _mm256_movemask_pd(_mm256_cmp_pd(c, d, _CMP_LT_OQ));
    while (m != 0) {
      const int bit = __builtin_ctz(static_cast<unsigned>(m));
      out_idx[count++] = static_cast<uint32_t>(i) + static_cast<uint32_t>(bit);
      m &= m - 1;
    }
  }
#elif defined(INDOOR_SIMD_SSE2)
  for (; i + 2 <= n; i += 2) {
    const __m128d d = _mm_set_pd(dist[targets[i + 1]], dist[targets[i]]);
    const __m128d c = _mm_loadu_pd(cand + i);
    int m = _mm_movemask_pd(_mm_cmplt_pd(c, d));
    while (m != 0) {
      const int bit = __builtin_ctz(static_cast<unsigned>(m));
      out_idx[count++] = static_cast<uint32_t>(i) + static_cast<uint32_t>(bit);
      m &= m - 1;
    }
  }
#endif
  for (; i < n; ++i) {
    if (cand[i] < dist[targets[i]]) out_idx[count++] = static_cast<uint32_t>(i);
  }
  return count;
}

/// mask[i] = (v[i] <= bound) ? 1 : 0 for i in [0, n). Ordered comparison:
/// NaN and +inf lanes yield 0, exactly like the scalar `<=`.
inline void MaskLessEqual(const double* v, size_t n, double bound,
                          uint8_t* mask) {
  size_t i = 0;
#if defined(INDOOR_SIMD_AVX2)
  const __m256d b = _mm256_set1_pd(bound);
  for (; i + 4 <= n; i += 4) {
    const int m = _mm256_movemask_pd(
        _mm256_cmp_pd(_mm256_loadu_pd(v + i), b, _CMP_LE_OQ));
    mask[i] = static_cast<uint8_t>(m & 1);
    mask[i + 1] = static_cast<uint8_t>((m >> 1) & 1);
    mask[i + 2] = static_cast<uint8_t>((m >> 2) & 1);
    mask[i + 3] = static_cast<uint8_t>((m >> 3) & 1);
  }
#elif defined(INDOOR_SIMD_SSE2)
  const __m128d b = _mm_set1_pd(bound);
  for (; i + 2 <= n; i += 2) {
    const int m = _mm_movemask_pd(_mm_cmple_pd(_mm_loadu_pd(v + i), b));
    mask[i] = static_cast<uint8_t>(m & 1);
    mask[i + 1] = static_cast<uint8_t>((m >> 1) & 1);
  }
#endif
  for (; i < n; ++i) mask[i] = v[i] <= bound ? 1 : 0;
}

namespace detail {

/// max(acc, term) where term is valid only when both operands are finite;
/// invalid lanes contribute 0 (the accumulator starts at 0, so the final
/// result is already clamped to >= 0).
inline double AltTermMax(double acc, double a, double b) {
  // term = a - b, valid iff a != +inf && b != +inf && a != -inf && b != -inf.
  if (a != kInf && b != kInf && a != -kInf && b != -kInf) {
    const double t = a - b;
    if (t > acc) acc = t;
  }
  return acc;
}

#if defined(INDOOR_SIMD_AVX2)
/// Vector lane-mask: all-ones where x is finite (not +-inf). Inputs are
/// never NaN (distances are finite or +-inf sentinels).
inline __m256d FiniteMask(__m256d x) {
  const __m256d pinf = _mm256_set1_pd(kInf);
  const __m256d ninf = _mm256_set1_pd(-kInf);
  return _mm256_and_pd(_mm256_cmp_pd(x, pinf, _CMP_NEQ_OQ),
                       _mm256_cmp_pd(x, ninf, _CMP_NEQ_OQ));
}
#elif defined(INDOOR_SIMD_SSE2)
/// Two-lane FiniteMask (see the AVX2 variant above).
inline __m128d FiniteMask(__m128d x) {
  const __m128d pinf = _mm_set1_pd(kInf);
  const __m128d ninf = _mm_set1_pd(-kInf);
  return _mm_and_pd(_mm_cmpneq_pd(x, pinf), _mm_cmpneq_pd(x, ninf));
}
#endif

}  // namespace detail

/// ALT triangle-inequality lower bound on d(s, t) from per-door landmark
/// rows (core/index/landmark_index.h): for each landmark l,
///   d(s,t) >= fwd_t[l] - fwd_s[l]   (fwd_x[l] = d(l, x))
///   d(s,t) >= bwd_s[l] - bwd_t[l]   (bwd_x[l] = d(x, l))
/// Terms with an infinite operand are skipped; the result is clamped to
/// >= 0. Subtractions and max are exact, so every implementation returns
/// the same bits.
inline double AltPairBound(const double* fwd_s, const double* fwd_t,
                           const double* bwd_s, const double* bwd_t,
                           size_t n) {
  double acc = 0.0;
  size_t i = 0;
#if defined(INDOOR_SIMD_AVX2)
  __m256d vacc = _mm256_setzero_pd();
  for (; i + 4 <= n; i += 4) {
    const __m256d fs = _mm256_loadu_pd(fwd_s + i);
    const __m256d ft = _mm256_loadu_pd(fwd_t + i);
    const __m256d bs = _mm256_loadu_pd(bwd_s + i);
    const __m256d bt = _mm256_loadu_pd(bwd_t + i);
    const __m256d t1 = _mm256_and_pd(
        _mm256_and_pd(detail::FiniteMask(ft), detail::FiniteMask(fs)),
        _mm256_sub_pd(ft, fs));
    const __m256d t2 = _mm256_and_pd(
        _mm256_and_pd(detail::FiniteMask(bs), detail::FiniteMask(bt)),
        _mm256_sub_pd(bs, bt));
    vacc = _mm256_max_pd(vacc, _mm256_max_pd(t1, t2));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, vacc);
  for (const double v : lanes) {
    if (v > acc) acc = v;
  }
#endif
  for (; i < n; ++i) {
    acc = detail::AltTermMax(acc, fwd_t[i], fwd_s[i]);
    acc = detail::AltTermMax(acc, bwd_s[i], bwd_t[i]);
  }
  return acc;
}

/// Landmark-major batch variant of the ALT bound, used by the approximate
/// kNN tier (core/index/approx_knn.h): for ONE landmark l with the
/// query-side aggregates fq = d(l, q) and bq = d(q, l), folds the terms
///   acc[o] = max(acc[o], fwd[o] - fq, bq - bwd[o])
/// over a whole landmark-major row (fwd[o] = d(l, object_o), bwd[o] =
/// d(object_o, l)). Terms with an infinite operand are skipped, exactly as
/// in AltTermMax; callers zero `acc` before the first landmark so the
/// final accumulator is clamped to >= 0. Per-lane subtract/compare/max
/// only, so every tier returns the same bits as the scalar loop.
inline void AltBatchBoundMax(const double* fwd, const double* bwd, double fq,
                             double bq, double* acc, size_t n) {
  size_t i = 0;
#if defined(INDOOR_SIMD_AVX2)
  const __m256d vfq = _mm256_set1_pd(fq);
  const __m256d vbq = _mm256_set1_pd(bq);
  const __m256d fq_ok = detail::FiniteMask(vfq);
  const __m256d bq_ok = detail::FiniteMask(vbq);
  for (; i + 4 <= n; i += 4) {
    const __m256d f = _mm256_loadu_pd(fwd + i);
    const __m256d b = _mm256_loadu_pd(bwd + i);
    const __m256d t1 = _mm256_and_pd(
        _mm256_and_pd(detail::FiniteMask(f), fq_ok), _mm256_sub_pd(f, vfq));
    const __m256d t2 = _mm256_and_pd(
        _mm256_and_pd(bq_ok, detail::FiniteMask(b)), _mm256_sub_pd(vbq, b));
    // maxpd keeps the SECOND operand on ties, so (term, acc) ordering
    // reproduces the scalar strict `t > acc` replacement bit-for-bit
    // (masked-out terms become +0.0 and never displace a >= 0 acc).
    __m256d a = _mm256_loadu_pd(acc + i);
    a = _mm256_max_pd(t1, a);
    a = _mm256_max_pd(t2, a);
    _mm256_storeu_pd(acc + i, a);
  }
#elif defined(INDOOR_SIMD_SSE2)
  const __m128d vfq = _mm_set1_pd(fq);
  const __m128d vbq = _mm_set1_pd(bq);
  const __m128d fq_ok = detail::FiniteMask(vfq);
  const __m128d bq_ok = detail::FiniteMask(vbq);
  for (; i + 2 <= n; i += 2) {
    const __m128d f = _mm_loadu_pd(fwd + i);
    const __m128d b = _mm_loadu_pd(bwd + i);
    const __m128d t1 = _mm_and_pd(
        _mm_and_pd(detail::FiniteMask(f), fq_ok), _mm_sub_pd(f, vfq));
    const __m128d t2 = _mm_and_pd(
        _mm_and_pd(bq_ok, detail::FiniteMask(b)), _mm_sub_pd(vbq, b));
    // Same (term, acc) maxpd ordering as the AVX2 tier: SSE2 maxpd also
    // keeps the SECOND operand on ties, matching the scalar `t > acc`.
    __m128d a = _mm_loadu_pd(acc + i);
    a = _mm_max_pd(t1, a);
    a = _mm_max_pd(t2, a);
    _mm_storeu_pd(acc + i, a);
  }
#endif
  for (; i < n; ++i) {
    double a = detail::AltTermMax(acc[i], fwd[i], fq);
    a = detail::AltTermMax(a, bq, bwd[i]);
    acc[i] = a;
  }
}

/// Target-SET variant of AltPairBound, used by the virtual-source Dijkstra
/// to prune pushes: lower-bounds min over the destination-door set T of
/// d(v, t), given the per-query aggregates
///   min_tf[l] = min over t in T of fwd_t[l]   (+inf when no finite entry)
///   max_tb[l] = max over t in T of bwd_t[l]   (-inf when T empty; +inf
///                                              when any t cannot reach l)
/// For each landmark l: min_t d(v,t) >= min_tf[l] - fwd_v[l] and
/// min_t d(v,t) >= bwd_v[l] - max_tb[l]; terms with an infinite operand
/// are skipped and the result is clamped to >= 0.
inline double AltSetBound(const double* fwd_v, const double* bwd_v,
                          const double* min_tf, const double* max_tb,
                          size_t n) {
  double acc = 0.0;
  size_t i = 0;
#if defined(INDOOR_SIMD_AVX2)
  __m256d vacc = _mm256_setzero_pd();
  for (; i + 4 <= n; i += 4) {
    const __m256d fv = _mm256_loadu_pd(fwd_v + i);
    const __m256d bv = _mm256_loadu_pd(bwd_v + i);
    const __m256d mtf = _mm256_loadu_pd(min_tf + i);
    const __m256d mtb = _mm256_loadu_pd(max_tb + i);
    const __m256d t1 = _mm256_and_pd(
        _mm256_and_pd(detail::FiniteMask(mtf), detail::FiniteMask(fv)),
        _mm256_sub_pd(mtf, fv));
    const __m256d t2 = _mm256_and_pd(
        _mm256_and_pd(detail::FiniteMask(bv), detail::FiniteMask(mtb)),
        _mm256_sub_pd(bv, mtb));
    vacc = _mm256_max_pd(vacc, _mm256_max_pd(t1, t2));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, vacc);
  for (const double v : lanes) {
    if (v > acc) acc = v;
  }
#endif
  for (; i < n; ++i) {
    acc = detail::AltTermMax(acc, min_tf[i], fwd_v[i]);
    acc = detail::AltTermMax(acc, bwd_v[i], max_tb[i]);
  }
  return acc;
}

}  // namespace simd
}  // namespace indoor

#endif  // INDOOR_UTIL_SIMD_H_
