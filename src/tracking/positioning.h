// Symbolic indoor positioning: proximity readers (RFID/BLE-style) and the
// partition-level tracker they feed. The paper's services assume such
// positioning exists ("a variety of technologies that use, e.g., Wi-Fi,
// Bluetooth, and RFID, enable positioning in indoor settings", §I, citing
// the authors' graph-based tracking work [8]); this module supplies it
// synthetically: readers deployed at doors detect tags passing within
// range, and a symbolic tracker maintains the candidate partitions each
// tracked object may currently occupy.

#ifndef INDOOR_TRACKING_POSITIONING_H_
#define INDOOR_TRACKING_POSITIONING_H_

#include <vector>

#include "indoor/floor_plan.h"
#include "rtree/rtree.h"
#include "tracking/trajectory.h"

namespace indoor {

/// A proximity reader: detects tags within `range` meters of `position`.
struct Reader {
  uint32_t id = kInvalidId;
  Point position;
  double range = 1.0;
  /// The door this reader observes, kInvalidId for free-standing readers.
  DoorId door = kInvalidId;
};

/// One detection event.
struct Detection {
  ObjectId object = kInvalidId;
  uint32_t reader = kInvalidId;
};

/// A set of deployed readers with spatial lookup.
class ReaderDeployment {
 public:
  /// The canonical deployment of the cited tracking work: one reader per
  /// door, centered on the door, observing crossings.
  static ReaderDeployment AtDoors(const FloorPlan& plan, double range);

  /// Custom deployment.
  explicit ReaderDeployment(std::vector<Reader> readers);

  const std::vector<Reader>& readers() const { return readers_; }

  /// Readers whose range covers `p`.
  std::vector<uint32_t> Detect(const Point& p) const;

  /// Detections for a batch of position reports.
  std::vector<Detection> DetectAll(
      const std::vector<PositionReport>& reports) const;

 private:
  std::vector<Reader> readers_;
  RTree rtree_;
};

/// Partition-level symbolic tracker: after a tag fires the reader at door
/// d, the tag is in one of the partitions d touches; it stays in its
/// candidate set's reachable closure until the next detection narrows it
/// again. (A deliberate simplification of [8]'s probabilistic model: we
/// track the candidate SET, not a distribution.)
class SymbolicTracker {
 public:
  SymbolicTracker(const FloorPlan& plan, const ReaderDeployment& deployment,
                  size_t object_count);

  /// Processes one detection: the object's candidates become the
  /// partitions touched by the reader's door (or, for a free-standing
  /// reader, every partition containing its position).
  void OnDetection(const Detection& detection);

  /// Widens every object's candidate set by one door hop (call when time
  /// passes without detections; movement may have crossed unobserved
  /// doors only if readers miss — with door-complete deployments this
  /// models reader failures).
  void WidenAll();

  /// Current candidate partitions of `id`, sorted. Starts as "anywhere"
  /// (empty = unknown/everywhere).
  const std::vector<PartitionId>& Candidates(ObjectId id) const {
    INDOOR_CHECK(id < candidates_.size());
    return candidates_[id];
  }

  /// True while nothing is known about `id`.
  bool Unknown(ObjectId id) const { return Candidates(id).empty(); }

 private:
  const FloorPlan* plan_;
  const ReaderDeployment* deployment_;
  std::vector<std::vector<PartitionId>> candidates_;
};

}  // namespace indoor

#endif  // INDOOR_TRACKING_POSITIONING_H_
