#include "tracking/positioning.h"

#include <algorithm>

namespace indoor {

ReaderDeployment ReaderDeployment::AtDoors(const FloorPlan& plan,
                                           double range) {
  std::vector<Reader> readers;
  readers.reserve(plan.door_count());
  for (const Door& door : plan.doors()) {
    Reader reader;
    reader.id = static_cast<uint32_t>(readers.size());
    reader.position = door.Midpoint();
    reader.range = range;
    reader.door = door.id();
    readers.push_back(reader);
  }
  return ReaderDeployment(std::move(readers));
}

ReaderDeployment::ReaderDeployment(std::vector<Reader> readers)
    : readers_(std::move(readers)) {
  std::vector<std::pair<Rect, uint32_t>> items;
  items.reserve(readers_.size());
  for (const Reader& reader : readers_) {
    items.push_back(
        {Rect(reader.position.x - reader.range,
              reader.position.y - reader.range,
              reader.position.x + reader.range,
              reader.position.y + reader.range),
         reader.id});
  }
  rtree_.BulkLoad(std::move(items));
}

std::vector<uint32_t> ReaderDeployment::Detect(const Point& p) const {
  std::vector<uint32_t> out;
  for (uint32_t id : rtree_.QueryPoint(p)) {
    const Reader& reader = readers_[id];
    if (Distance(reader.position, p) <= reader.range) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Detection> ReaderDeployment::DetectAll(
    const std::vector<PositionReport>& reports) const {
  std::vector<Detection> out;
  for (const PositionReport& report : reports) {
    for (uint32_t reader : Detect(report.position)) {
      out.push_back({report.id, reader});
    }
  }
  return out;
}

SymbolicTracker::SymbolicTracker(const FloorPlan& plan,
                                 const ReaderDeployment& deployment,
                                 size_t object_count)
    : plan_(&plan), deployment_(&deployment), candidates_(object_count) {}

void SymbolicTracker::OnDetection(const Detection& detection) {
  INDOOR_CHECK(detection.object < candidates_.size());
  INDOOR_CHECK(detection.reader < deployment_->readers().size());
  const Reader& reader = deployment_->readers()[detection.reader];
  std::vector<PartitionId> next;
  if (reader.door != kInvalidId) {
    const auto [a, b] = plan_->ConnectedPair(reader.door);
    next = {std::min(a, b), std::max(a, b)};
  } else {
    for (const Partition& part : plan_->partitions()) {
      if (part.Contains(reader.position)) next.push_back(part.id());
    }
  }
  candidates_[detection.object] = std::move(next);
}

void SymbolicTracker::WidenAll() {
  for (auto& cands : candidates_) {
    if (cands.empty()) continue;  // unknown stays unknown
    std::vector<PartitionId> widened = cands;
    for (PartitionId v : cands) {
      for (DoorId d : plan_->LeaveDoors(v)) {
        for (PartitionId to : plan_->EnterableParts(d)) {
          widened.push_back(to);
        }
      }
    }
    std::sort(widened.begin(), widened.end());
    widened.erase(std::unique(widened.begin(), widened.end()),
                  widened.end());
    cands = std::move(widened);
  }
}

}  // namespace indoor
