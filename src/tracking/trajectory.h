// Moving populations: a random-waypoint trajectory simulator over the
// indoor shortest-path graph. The paper's motivating services track people
// moving through buildings (via RFID/Wi-Fi positioning, §I); this module
// supplies that substrate synthetically — agents repeatedly pick a random
// destination partition and walk the exact shortest indoor path to it at
// constant speed, emitting position reports that feed the ObjectStore and
// the continuous query monitors (monitor.h).

#ifndef INDOOR_TRACKING_TRAJECTORY_H_
#define INDOOR_TRACKING_TRAJECTORY_H_

#include <vector>

#include "core/distance/shortest_path.h"
#include "core/index/object_store.h"
#include "gen/object_generator.h"

namespace indoor {

/// One position report: object `id` is now at `position` in `partition`.
struct PositionReport {
  ObjectId id = kInvalidId;
  PartitionId partition = kInvalidId;
  Point position;
};

/// Simulator configuration.
struct TrajectoryConfig {
  /// Walking speed in meters per second.
  double speed = 1.4;
  /// Pause at each reached destination, in seconds.
  double pause = 2.0;
  uint64_t seed = 42;
};

/// Random-waypoint movement of a set of agents along exact shortest
/// indoor paths. Agents correspond 1:1 to objects already inserted in an
/// ObjectStore; Step() advances the clock and returns the reports to apply.
class TrajectorySimulator {
 public:
  /// Tracks every object currently in `store`. Both referents must outlive
  /// the simulator; `store`'s objects must not be removed while simulating.
  TrajectorySimulator(const DistanceContext& ctx, const ObjectStore& store,
                      TrajectoryConfig config = {});

  /// Advances all agents by `dt` seconds; returns one report per agent
  /// that moved. Reports are NOT applied to the store — feed them to
  /// TrackingService/ObjectStore::MoveObject so index maintenance stays
  /// observable.
  std::vector<PositionReport> Step(double dt);

  size_t agent_count() const { return agents_.size(); }

 private:
  struct Agent {
    ObjectId id;
    std::vector<Point> waypoints;      // remaining polyline, front = next
    std::vector<PartitionId> hosts;    // host partition per waypoint leg
    size_t leg = 0;                    // index into waypoints (next target)
    Point position;
    PartitionId partition;
    double pause_left = 0;
  };

  void PickNewPath(Agent* agent);

  const DistanceContext ctx_;
  TrajectoryConfig config_;
  PartitionSampler sampler_;
  Rng rng_;
  std::vector<Agent> agents_;
};

}  // namespace indoor

#endif  // INDOOR_TRACKING_TRAJECTORY_H_
