// Continuous distance-aware queries over moving objects: a registered
// range query whose result set is maintained incrementally as position
// reports arrive, instead of re-running Algorithm 5 per tick.
//
// The monitor pins a DistanceField at the query position (one Dijkstra at
// registration), so each report costs one field probe — O(doors of the
// object's partition) — versus a full query re-evaluation. This is the
// "boarding reminder" service loop of the paper's §I made concrete.

#ifndef INDOOR_TRACKING_MONITOR_H_
#define INDOOR_TRACKING_MONITOR_H_

#include <unordered_set>

#include "core/distance/distance_field.h"
#include "core/index/object_store.h"
#include "tracking/trajectory.h"

namespace indoor {

/// A standing range query Qr(q, r) maintained under object movement.
///
/// Per-partition distance bounds (computed once from the field) dismiss
/// most reports in O(1): a report into a partition whose every point is
/// beyond r cannot add a member, and one into a partition entirely within
/// r cannot remove one. Only borderline partitions cost a field probe.
class ContinuousRangeMonitor {
 public:
  /// Registers the monitor and computes the initial result over `store`.
  ContinuousRangeMonitor(const DistanceContext& ctx,
                         const ObjectStore& store, const Point& q, double r);

  const Point& query() const { return query_; }
  double radius() const { return radius_; }

  /// Applies one position report; returns true if the membership of that
  /// object changed (entered or left the range).
  bool OnReport(const PositionReport& report);

  /// True if `id` is currently within range.
  bool Contains(ObjectId id) const { return members_.count(id) > 0; }

  /// Current members, sorted.
  std::vector<ObjectId> Members() const;

  size_t size() const { return members_.size(); }

  /// Probes actually executed since construction (exposed so benches and
  /// tests can verify the bound-based pruning).
  size_t probes() const { return probes_; }

 private:
  DistanceField field_;
  Point query_;
  double radius_;
  std::unordered_set<ObjectId> members_;
  // Per partition: lower/upper bound of the distance from the query to any
  // point of the partition.
  std::vector<double> part_lower_;
  std::vector<double> part_upper_;
  size_t probes_ = 0;
};

/// Applies position reports to the store (index maintenance); aborts on a
/// report that the store rejects (a simulator/report bug).
void ApplyReports(const std::vector<PositionReport>& reports,
                  ObjectStore* store);

}  // namespace indoor

#endif  // INDOOR_TRACKING_MONITOR_H_
