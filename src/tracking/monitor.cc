#include "tracking/monitor.h"

#include <algorithm>

namespace indoor {

ContinuousRangeMonitor::ContinuousRangeMonitor(const DistanceContext& ctx,
                                               const ObjectStore& store,
                                               const Point& q, double r)
    : field_(ctx, q), query_(q), radius_(r) {
  // Per-partition bounds: any point of v is at distance within
  // [min over entering doors of door_dist, min over entering doors of
  //  door_dist + fdv(door, v)]. The host partition's lower bound is 0 and
  // its upper bound must also admit the direct intra route.
  const FloorPlan& plan = ctx.graph->plan();
  part_lower_.assign(plan.partition_count(), kInfDistance);
  part_upper_.assign(plan.partition_count(), kInfDistance);
  if (field_.valid()) {
    for (PartitionId v = 0; v < plan.partition_count(); ++v) {
      for (DoorId dt : plan.EnterDoors(v)) {
        const double base = field_.DistanceToDoor(dt);
        if (base == kInfDistance) continue;
        part_lower_[v] = std::min(part_lower_[v], base);
        const double reach = ctx.graph->Fdv(dt, v);
        if (reach != kInfDistance) {
          part_upper_[v] = std::min(part_upper_[v], base + reach);
        }
      }
    }
    const PartitionId host = field_.host();
    part_lower_[host] = 0.0;
    const double direct_reach =
        plan.partition(host).MaxDistanceFrom(q);
    part_upper_[host] = std::min(part_upper_[host], direct_reach);
  }
  for (const IndoorObject& obj : store.objects()) {
    if (field_.DistanceTo(obj.partition, obj.position) <= radius_) {
      members_.insert(obj.id);
    }
  }
}

bool ContinuousRangeMonitor::OnReport(const PositionReport& report) {
  const bool was_inside = members_.count(report.id) > 0;
  const PartitionId v = report.partition;
  // O(1) resolution via the partition bounds where they are decisive.
  bool inside;
  if (v < part_upper_.size() && part_upper_[v] <= radius_) {
    inside = true;  // the whole partition lies within range
  } else if (v < part_lower_.size() && part_lower_[v] > radius_) {
    inside = false;  // the whole partition lies beyond range
  } else {
    ++probes_;
    inside = field_.DistanceTo(report.partition, report.position) <= radius_;
  }
  if (inside == was_inside) return false;
  if (inside) {
    members_.insert(report.id);
  } else {
    members_.erase(report.id);
  }
  return true;
}

std::vector<ObjectId> ContinuousRangeMonitor::Members() const {
  std::vector<ObjectId> out(members_.begin(), members_.end());
  std::sort(out.begin(), out.end());
  return out;
}

void ApplyReports(const std::vector<PositionReport>& reports,
                  ObjectStore* store) {
  for (const PositionReport& report : reports) {
    const Status st =
        store->MoveObject(report.id, report.partition, report.position);
    INDOOR_CHECK(st.ok()) << st.ToString();
  }
}

}  // namespace indoor
