#include "tracking/trajectory.h"

namespace indoor {

TrajectorySimulator::TrajectorySimulator(const DistanceContext& ctx,
                                         const ObjectStore& store,
                                         TrajectoryConfig config)
    : ctx_(ctx),
      config_(config),
      sampler_(ctx.graph->plan()),
      rng_(config.seed) {
  agents_.reserve(store.size());
  for (const IndoorObject& obj : store.objects()) {
    Agent agent;
    agent.id = obj.id;
    agent.position = obj.position;
    agent.partition = obj.partition;
    agent.pause_left = rng_.NextDouble(0, config_.pause);
    agents_.push_back(std::move(agent));
  }
}

void TrajectorySimulator::PickNewPath(Agent* agent) {
  const FloorPlan& plan = ctx_.graph->plan();
  for (int attempt = 0; attempt < 8; ++attempt) {
    const PartitionId dest_part = sampler_.Sample(&rng_);
    const Point dest =
        RandomPointInPartition(plan.partition(dest_part), &rng_);
    IndoorPath path = Pt2PtShortestPath(ctx_, agent->position, dest,
                                        /*expand_waypoints=*/true);
    if (!path.found() || path.waypoints.size() < 2) continue;
    agent->waypoints = std::move(path.waypoints);
    agent->leg = 1;  // waypoint 0 is the current position
    return;
  }
  // Unreachable pocket: stay put and retry after a pause.
  agent->waypoints.clear();
  agent->pause_left = config_.pause;
}

std::vector<PositionReport> TrajectorySimulator::Step(double dt) {
  std::vector<PositionReport> reports;
  const PartitionLocator& locator = *ctx_.locator;
  for (Agent& agent : agents_) {
    double budget = dt;
    bool moved = false;
    while (budget > 1e-12) {
      if (agent.pause_left > 0) {
        const double waited = std::min(agent.pause_left, budget);
        agent.pause_left -= waited;
        budget -= waited;
        continue;
      }
      if (agent.leg >= agent.waypoints.size()) {
        PickNewPath(&agent);
        if (agent.waypoints.empty()) break;  // stuck; pause consumed next
      }
      const Point& target = agent.waypoints[agent.leg];
      const double remaining = Distance(agent.position, target);
      const double step = config_.speed * budget;
      if (step >= remaining) {
        agent.position = target;
        budget -= remaining / config_.speed;
        ++agent.leg;
        if (agent.leg >= agent.waypoints.size()) {
          agent.waypoints.clear();
          agent.pause_left = config_.pause;
        }
      } else {
        agent.position =
            Lerp(agent.position, target, step / remaining);
        budget = 0;
      }
      moved = true;
    }
    if (moved) {
      const auto host = locator.GetHostPartition(agent.position);
      if (host.ok()) agent.partition = host.value();
      reports.push_back({agent.id, agent.partition, agent.position});
    }
  }
  return reports;
}

}  // namespace indoor
